"""Core-operations benchmark: state backends under batched replay.

This is the engine behind ``repro bench`` and the importable half of
``benchmarks/bench_core_operations.py``: it records a fixed workload
trace, replays it through each available state backend (``object``,
``packed``, and — when numpy is installed — ``packed-np``), and writes
the machine-readable evidence file ``BENCH_core.json`` (each write also
appends a timestamped line to ``BENCH_history.jsonl`` so regressions
can be traced across runs).

Measurement methodology
-----------------------

Shared machines drift: the same replay can swing 2x slower between two
back-to-back sweeps as neighbors come and go.  Timing all of backend A
and then all of backend B bakes that drift into the ratio, so the
headline speedup is measured **interleaved**: alternating A/B runs,
taking the *median of per-round ratios*.  Each ratio compares two runs
executed milliseconds apart, which cancels machine-level drift; the
median discards rounds where a neighbor landed mid-pair.  Per-backend
absolute throughputs are still reported best-of-N (the usual
minimum-noise estimator), but only the interleaved ratio feeds the
speedup gate.
"""

from __future__ import annotations

import statistics
import time
from functools import lru_cache
from typing import Dict, List

from .core.backend import BACKENDS
from .core.pacer import PacerDetector
from .detectors import FastTrackDetector
from .sim.scheduler import Scheduler
from .sim.workloads import WORKLOADS, build_program
from .trace.batch import encode_batch

__all__ = [
    "BATCH_CONFIGS",
    "PACKED_SPEEDUP_TARGET",
    "PACKED_NP_SPEEDUP_TARGET",
    "recorded_trace",
    "marked_trace",
    "backend_comparison",
    "interleaved_speedup",
    "emit_json",
    "check_gates",
    "write_bench_json",
    "append_bench_history",
]

#: the packed backend must beat the object backend's *batched* replay by
#: this factor on the layout-bound (fasttrack) config.
PACKED_SPEEDUP_TARGET = 1.5

#: target for the vectorized packed-np backend on the same metric (the
#: column-kernel design goal).  The measured interleaved ratio is
#: recorded in BENCH_core.json either way; CI gates on direction only
#: (shared boxes are too noisy for a sharp ratio assert).
PACKED_NP_SPEEDUP_TARGET = 5.0

#: workload the backend rows and the speedup gate replay
BENCH_WORKLOAD = "pseudojbb"


@lru_cache(maxsize=None)
def recorded_trace(name: str, trial_seed: int = 0, size: float = 0.7) -> tuple:
    """A fixed recorded trace of one workload (for replay timing)."""
    spec = WORKLOADS[name].scaled(size)
    events: List = []
    scheduler = Scheduler(build_program(spec, trial_seed), seed=trial_seed,
                          sink=events.append)
    scheduler.run()
    return tuple(events)


def marked_trace(name: str, rate: float, period: int = 400,
                 trial_seed: int = 0, size: float = 0.7) -> list:
    """A recorded trace with sampling-period markers inserted.

    Splits the trace into fixed-size periods and marks a deterministic
    fraction ``rate`` of them as sampling periods (spread evenly), so
    replay benchmarks measure PACER at an exact effective rate.
    """
    from .trace.events import sbegin, send

    base = recorded_trace(name, trial_seed, size)
    n_periods = max(1, (len(base) + period - 1) // period)
    sampled = set()
    if rate >= 1.0:
        sampled = set(range(n_periods))
    elif rate > 0:
        want = max(1, round(rate * n_periods))
        step = n_periods / want
        sampled = {int(i * step) for i in range(want)}
    events = []
    sampling = False
    for i in range(n_periods):
        should = i in sampled
        if should and not sampling:
            events.append(sbegin())
            sampling = True
        elif not should and sampling:
            events.append(send())
            sampling = False
        events.extend(base[i * period:(i + 1) * period])
    if sampling:
        events.append(send())
    return events


#: (label, detector factory, trace builder).  FASTTRACK replays a plain
#: recorded trace; PACER replays the paper's low-rate regime (r=1% with
#: period markers), where the non-sampling bulk path dominates.
BATCH_CONFIGS = [
    ("fasttrack", FastTrackDetector,
     lambda size: list(recorded_trace(BENCH_WORKLOAD, size=size))),
    ("pacer r=1%", PacerDetector,
     lambda size: marked_trace(BENCH_WORKLOAD, 0.01, size=size)),
]


def _best_rate(run, repeats):
    """Best-of-N events/sec (minimum-noise estimate on a busy machine)."""
    return max(run() for _ in range(repeats))


def backend_comparison(size=0.7, repeats=3):
    """Per (config, backend): throughput and end-of-replay footprint.

    Returns ``[(label, backend, n_events, scalar ev/s, batched ev/s,
    footprint words), ...]`` over every backend available on this
    interpreter.  Footprints are trace-determined, so equal footprints
    across backends double as a space-parity check.
    """
    rows = []
    for label, factory, build in BATCH_CONFIGS:
        events = build(size)
        encoded = encode_batch(events)
        for backend in BACKENDS:

            def scalar():
                det = factory(backend=backend)
                det.run(events)
                return det.perf.events_per_sec

            def batched():
                det = factory(backend=backend)
                det.run_batch(encoded)
                return det.perf.events_per_sec

            probe = factory(backend=backend)
            probe.run_batch(encoded)
            rows.append(
                (label, backend, len(events), _best_rate(scalar, repeats),
                 _best_rate(batched, repeats), probe.footprint_words())
            )
    return rows


def interleaved_speedup(contender: str, baseline: str = "object",
                        config: str = "fasttrack", size: float = 1.0,
                        rounds: int = 5):
    """Drift-robust batched-replay speedup of one backend over another.

    Runs ``rounds`` alternating baseline/contender replays and returns
    ``(median of per-round ratios, events)`` — see the module docstring
    for why this beats comparing two best-of-N sweeps on shared boxes.
    """
    label, factory, build = next(c for c in BATCH_CONFIGS if c[0] == config)
    events = build(size)
    encoded = encode_batch(events)
    if contender == "packed-np" or baseline == "packed-np":
        encoded.to_numpy_columns()  # cache columns outside the timed runs

    def run(backend):
        det = factory(backend=backend)
        det.run_batch(encoded)
        return det.perf.events_per_sec

    run(baseline), run(contender)  # warm allocators and code paths
    ratios = []
    for _ in range(rounds):
        base = run(baseline)
        cont = run(contender)
        ratios.append(cont / base)
    return statistics.median(ratios), len(events)


def write_bench_json(path, doc: Dict) -> None:
    """Write one benchmark's machine-readable results (CI artifact).

    Stable formatting (sorted keys, trailing newline) so committed
    evidence files diff cleanly between runs.  Each write also appends a
    timestamped copy to ``BENCH_history.jsonl`` next to ``path`` — one
    JSON object per line — so regressions can be traced across runs
    without digging through CI artifact archives.
    """
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    append_bench_history(path, doc)


def append_bench_history(path, doc: Dict) -> None:
    """Append ``doc`` (timestamped) to the sibling ``BENCH_history.jsonl``."""
    import json
    from pathlib import Path

    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **doc,
    }
    history = Path(path).resolve().parent / "BENCH_history.jsonl"
    with open(history, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {history.name}")


def _print_table(header, rows):
    from .analysis import render_table

    print(render_table(header, rows))


def print_backend_rows(rows):
    _print_table(
        ["detector", "backend", "events", "scalar ev/s", "batched ev/s",
         "footprint words"],
        [[label, backend, n, f"{s:,.0f}", f"{b:,.0f}", f"{fp:,}"]
         for label, backend, n, s, b, fp in rows],
    )


def emit_json(path, size=0.7, repeats=3, gate_size=1.0, gate_rounds=5) -> int:
    """Run the backend comparison and write ``path`` (BENCH_core.json).

    The per-backend rows use ``size``/``repeats`` best-of-N sweeps; the
    speedup gates use interleaved ``gate_size``/``gate_rounds`` runs.
    """
    rows = backend_comparison(size=size, repeats=repeats)
    print("\nState backends: batched replay throughput + footprint")
    print_backend_rows(rows)
    packed_speedup, _ = interleaved_speedup(
        "packed", size=gate_size, rounds=gate_rounds)
    gates = [{
        "config": "fasttrack",
        "metric": "batched replay throughput, packed vs object backend "
                  "(interleaved median ratio)",
        "speedup": round(packed_speedup, 3),
        "target": PACKED_SPEEDUP_TARGET,
    }]
    print(f"packed vs object batched replay (fasttrack): "
          f"{packed_speedup:.2f}x (target {PACKED_SPEEDUP_TARGET}x)")
    if "packed-np" in BACKENDS:
        np_speedup, n_events = interleaved_speedup(
            "packed-np", size=gate_size, rounds=gate_rounds)
        gates.append({
            "config": "fasttrack",
            "metric": "batched replay throughput, packed-np vs object "
                      "backend (interleaved median ratio)",
            "events": n_events,
            "speedup": round(np_speedup, 3),
            "target": PACKED_NP_SPEEDUP_TARGET,
        })
        print(f"packed-np vs object batched replay (fasttrack): "
              f"{np_speedup:.2f}x (target {PACKED_NP_SPEEDUP_TARGET}x)")
        if np_speedup < PACKED_NP_SPEEDUP_TARGET:
            print(f"WARNING: below the {PACKED_NP_SPEEDUP_TARGET}x target "
                  f"on this box")
    else:
        print("packed-np backend unavailable (numpy not installed); "
              "skipping its gate")
    doc = {
        "bench": "core_operations",
        "workload": BENCH_WORKLOAD,
        "size": size,
        "backends": list(BACKENDS),
        "methodology": "per-backend rows best-of-N; gate speedups from "
                       "interleaved alternating runs, median of per-round "
                       "ratios (robust to machine drift)",
        "rows": [
            {
                "detector": label,
                "backend": backend,
                "events": n,
                "scalar_events_per_sec": round(s, 1),
                "batched_events_per_sec": round(b, 1),
                "footprint_words": fp,
            }
            for label, backend, n, s, b, fp in rows
        ],
        "gate": gates[0],
        "gates": gates,
    }
    write_bench_json(path, doc)
    return 0


def check_gates(path) -> int:
    """Enforce the speedup targets recorded in a BENCH_core.json file.

    Returns nonzero if any gate's measured speedup is below its target —
    the strict form of the CI throughput gate (``repro bench --check``).
    """
    import json

    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    gates = doc.get("gates") or [doc["gate"]]
    failures = [g for g in gates if g["speedup"] < g["target"]]
    for g in gates:
        status = "OK" if g["speedup"] >= g["target"] else "FAIL"
        print(f"gate {status}: {g['metric']}: {g['speedup']}x "
              f"(target {g['target']}x)")
    return 1 if failures else 0
