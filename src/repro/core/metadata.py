"""Per-variable and per-synchronization-object detector metadata.

Mirrors the paper's implementation (§4): every data variable owns a
*write epoch* plus *read map* (either may be null, meaning discarded /
never set), and every synchronization object owns a vector clock plus —
for PACER — version information.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .clocks import Epoch, ReadMap, VectorClock
from .versioning import VE_BOTTOM, SharableClock, pack_vepoch

__all__ = ["VarState", "ThreadMeta", "SyncMeta", "footprint_words"]


class VarState:
    """Read/write metadata for one data variable.

    ``write is None`` and ``read is None`` both mean "no information"
    (equivalent to the minimal epoch 0@0).  PACER's inlined fast path is
    exactly the case where the variable has no :class:`VarState` at all,
    so detectors keep these in a dict and delete entries that become
    fully null.
    """

    __slots__ = ("write", "write_site", "write_index", "read")

    def __init__(self) -> None:
        self.write: Optional[Epoch] = None
        self.write_site: int = 0
        self.write_index: int = -1
        self.read: Optional[ReadMap] = None

    @property
    def is_null(self) -> bool:
        """True when both components have been discarded."""
        return self.write is None and self.read is None

    def words(self) -> int:
        """Approximate footprint in words (hash-table entry + payload)."""
        total = 2  # table entry: key + pointer
        if self.write is not None:
            total += 2  # packed epoch + site
        if self.read is not None:
            total += self.read.words()
        return total

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"VarState(W={self.write}, R={self.read!r})"


class ThreadMeta:
    """PACER metadata for one thread: clock + version vector (§3.2).

    ``ver[t]`` for the owner is the thread's own current version, bumped
    whenever its clock changes; other components record the latest
    version received from each peer.
    """

    __slots__ = ("clock", "ver", "alive")

    def __init__(self, tid: int) -> None:
        clock = SharableClock()
        clock.increment(tid)  # initial state: inc_t(⊥c)  (Equation 7)
        self.clock = clock
        ver = VectorClock()
        ver.increment(tid)  # initial state: inc_t(⊥v)
        self.ver = ver
        self.alive = True

    def vepoch(self, tid: int) -> int:
        """The thread's current *packed* version epoch ``ver_t[t]@t``."""
        return pack_vepoch(self.ver.get(tid), tid)


class SyncMeta:
    """PACER metadata for a lock or volatile: clock + packed version epoch."""

    __slots__ = ("clock", "vepoch")

    def __init__(self) -> None:
        self.clock = SharableClock()
        self.vepoch: int = VE_BOTTOM


def footprint_words(
    var_words: int = 0,
    clocks: Iterable[VectorClock] = (),
    versions: Iterable[VectorClock] = (),
    sync_overhead: int = 0,
) -> int:
    """Total live metadata footprint in words (Figure 10's metric).

    The one accounting rule every detector shares: ``var_words`` is the
    per-variable metadata total (a state store's ``words()``), every
    distinct vector clock costs one header word plus one word per stored
    component — clocks appearing more than once (PACER's shallow shares)
    are counted once, reflecting the space benefit of sharing — version
    vectors cost the same, and ``sync_overhead`` carries any fixed
    per-sync-object words (PACER's vepoch word + pointer).
    """
    total = var_words + sync_overhead
    seen = set()
    for clock in clocks:
        key = id(clock)
        if key not in seen:
            seen.add(key)
            total += 1 + len(clock)
    for ver in versions:
        total += 1 + len(ver)
    return total
