"""Per-variable and per-synchronization-object detector metadata.

Mirrors the paper's implementation (§4): every data variable owns a
*write epoch* plus *read map* (either may be null, meaning discarded /
never set), and every synchronization object owns a vector clock plus —
for PACER — version information.
"""

from __future__ import annotations

from typing import Dict, Optional

from .clocks import Epoch, ReadMap, VectorClock
from .versioning import BOTTOM_VE, SharableClock, VersionEpoch

__all__ = ["VarState", "ThreadMeta", "SyncMeta", "footprint_words"]

# Note: detectors implement their own footprint accounting on top of the
# per-object ``words()`` methods below; :func:`footprint_words` is the
# shared reference implementation used for cross-checking in tests.


class VarState:
    """Read/write metadata for one data variable.

    ``write is None`` and ``read is None`` both mean "no information"
    (equivalent to the minimal epoch 0@0).  PACER's inlined fast path is
    exactly the case where the variable has no :class:`VarState` at all,
    so detectors keep these in a dict and delete entries that become
    fully null.
    """

    __slots__ = ("write", "write_site", "write_index", "read")

    def __init__(self) -> None:
        self.write: Optional[Epoch] = None
        self.write_site: int = 0
        self.write_index: int = -1
        self.read: Optional[ReadMap] = None

    @property
    def is_null(self) -> bool:
        """True when both components have been discarded."""
        return self.write is None and self.read is None

    def words(self) -> int:
        """Approximate footprint in words (hash-table entry + payload)."""
        total = 2  # table entry: key + pointer
        if self.write is not None:
            total += 2  # packed epoch + site
        if self.read is not None:
            total += self.read.words()
        return total

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"VarState(W={self.write}, R={self.read!r})"


class ThreadMeta:
    """PACER metadata for one thread: clock + version vector (§3.2).

    ``ver[t]`` for the owner is the thread's own current version, bumped
    whenever its clock changes; other components record the latest
    version received from each peer.
    """

    __slots__ = ("clock", "ver", "alive")

    def __init__(self, tid: int) -> None:
        clock = SharableClock()
        clock.increment(tid)  # initial state: inc_t(⊥c)  (Equation 7)
        self.clock = clock
        ver = VectorClock()
        ver.increment(tid)  # initial state: inc_t(⊥v)
        self.ver = ver
        self.alive = True

    def vepoch(self, tid: int) -> VersionEpoch:
        """The thread's current version epoch ``ver_t[t]@t``."""
        return VersionEpoch(self.ver.get(tid), tid)


class SyncMeta:
    """PACER metadata for a lock or volatile: clock + version epoch."""

    __slots__ = ("clock", "vepoch")

    def __init__(self) -> None:
        self.clock = SharableClock()
        self.vepoch: VersionEpoch = BOTTOM_VE


def footprint_words(
    var_states: Dict[int, VarState],
    thread_clocks: Dict[int, SharableClock],
    thread_vers: Dict[int, VectorClock],
    sync_clocks: Dict[int, SharableClock],
) -> int:
    """Total live metadata footprint in words (Figure 10's metric).

    Shared clocks are counted once, reflecting the space benefit of
    shallow copies.
    """
    total = 0
    for state in var_states.values():
        total += state.words()
    seen = set()
    for clock in list(thread_clocks.values()) + list(sync_clocks.values()):
        if id(clock) in seen:
            continue
        seen.add(id(clock))
        total += 1 + len(clock)
    for ver in thread_vers.values():
        total += 1 + len(ver)
    # one header word per tracked sync object / variable pointer
    total += len(var_states) + len(sync_clocks) + len(thread_clocks)
    return total
