"""Sampling-period controllers (paper §4, "Sampling").

The implementation in the paper toggles sampling at garbage-collection
boundaries: at the end of each (frequent) nursery collection it enters a
sampling period with some probability.  Naively using the specified rate
r as that probability *under*-samples, because race-detection metadata
allocated during sampling makes collections come sooner — sampling
periods contain less program work than non-sampling periods.  The paper
corrects for this by measuring program work in *synchronization
operations* (which are sampling-independent) and adjusting the entry
probability; Table 1 shows the achieved effective rates.

This module provides the controllers; the simulator
(:mod:`repro.sim.runtime`) invokes them at GC boundaries, and traces can
embed scripted periods directly.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

__all__ = [
    "SamplingController",
    "FixedRateController",
    "BiasCorrectedController",
    "ScriptedController",
]


class SamplingController:
    """Decides, at each period boundary, whether to sample the next period.

    ``on_work(n, sampling)`` feeds back how much sampling-independent
    work (sync operations) the finished period contained, enabling bias
    correction.  ``effective_rate`` is the achieved fraction of work that
    fell inside sampling periods — the quantity Table 1 reports.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.sampled_work = 0
        self.total_work = 0

    def on_work(self, amount: int, sampling: bool) -> None:
        """Record ``amount`` units of work from a finished period."""
        self.total_work += amount
        if sampling:
            self.sampled_work += amount

    @property
    def effective_rate(self) -> float:
        """Fraction of observed work inside sampling periods."""
        if self.total_work == 0:
            return 0.0
        return self.sampled_work / self.total_work

    def decide(self) -> bool:
        """Should the next period be a sampling period?"""
        raise NotImplementedError


class FixedRateController(SamplingController):
    """Enter sampling periods with constant probability r (no correction).

    Exhibits the bias the paper describes when sampling periods do less
    program work; kept as the baseline for the Table 1 experiment.
    """

    def __init__(self, rate: float, rng: Optional[random.Random] = None) -> None:
        super().__init__(rate)
        self._rng = rng or random.Random()

    def decide(self) -> bool:
        if self.rate >= 1.0:
            return True
        return self._rng.random() < self.rate


class BiasCorrectedController(SamplingController):
    """The paper's corrected controller.

    Maintains exponential moving averages of work per sampling period
    (``w_s``) and per non-sampling period (``w_n``) and a running deficit,
    then chooses the entry probability p so the expected long-run work
    fraction equals the specified rate:

        p·w_s / (p·w_s + (1-p)·w_n) = r*       =>
        p = x / (1 + x),  x = r*·w_n / ((1-r*)·w_s)

    where r* is the specified rate nudged by the accumulated error
    (r - observed fraction), which lets the controller also recover from
    early-run noise.
    """

    def __init__(
        self,
        rate: float,
        rng: Optional[random.Random] = None,
        smoothing: float = 0.2,
        gain: float = 1.0,
    ) -> None:
        super().__init__(rate)
        self._rng = rng or random.Random()
        self._smoothing = smoothing
        self._gain = gain
        self._avg_sampling_work: Optional[float] = None
        self._avg_nonsampling_work: Optional[float] = None

    def on_work(self, amount: int, sampling: bool) -> None:
        super().on_work(amount, sampling)
        alpha = self._smoothing
        if sampling:
            prev = self._avg_sampling_work
            self._avg_sampling_work = (
                amount if prev is None else (1 - alpha) * prev + alpha * amount
            )
        else:
            prev = self._avg_nonsampling_work
            self._avg_nonsampling_work = (
                amount if prev is None else (1 - alpha) * prev + alpha * amount
            )

    def _entry_probability(self) -> float:
        r = self.rate
        if r >= 1.0:
            return 1.0
        if r <= 0.0:
            return 0.0
        if self.total_work > 0:
            observed = self.sampled_work / self.total_work
            r = min(max(r + self._gain * (self.rate - observed), 0.0), 1.0)
        w_s = self._avg_sampling_work
        w_n = self._avg_nonsampling_work
        if not w_s or not w_n:
            return r
        if r >= 1.0:
            return 1.0
        x = (r * w_n) / ((1.0 - r) * w_s)
        return x / (1.0 + x)

    def decide(self) -> bool:
        return self._rng.random() < self._entry_probability()


class ScriptedController(SamplingController):
    """Replays a fixed on/off schedule (for tests and replay benches)."""

    def __init__(self, schedule: Sequence[bool], rate: float = 0.0) -> None:
        super().__init__(rate)
        self._schedule: List[bool] = list(schedule)
        self._next = 0

    def decide(self) -> bool:
        if self._next >= len(self._schedule):
            return False
        decision = self._schedule[self._next]
        self._next += 1
        return decision
