"""Pluggable per-variable state backends (the ``StateBackend`` seam).

Two backends hold the detectors' per-variable read/write metadata:

* ``object`` — the reference implementation: a dict of
  :class:`~repro.core.metadata.VarState` objects holding
  :class:`~repro.core.clocks.Epoch` NamedTuples and
  :class:`~repro.core.clocks.ReadMap` instances.  This is the layout the
  paper describes and the code the algorithm map points at.
* ``packed`` — the default: a slab/arena of parallel integer arrays
  indexed by dense slot ids, storing epochs packed per
  :func:`~repro.core.clocks.pack_epoch`.  Inflated concurrent-read maps
  live in a side table keyed by slot; PACER's metadata discard returns
  slots to a free list for reuse.

Both backends are held to identical races, operation counts, and
footprint words by the differential suite
(``tests/test_batch_differential.py``); select one with
``--state-backend`` on the CLI or the ``REPRO_STATE_BACKEND``
environment variable.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .clocks import Epoch, ReadMap, unpack_epoch
from .metadata import VarState

__all__ = [
    "ALL_BACKENDS",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "READ_SHARED",
    "PackedVarStore",
    "resolve_backend",
]

try:  # NumPy is an optional extra (``repro[np]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the gating tests
    _np = None

#: Every backend name this codebase knows about, available or not.
ALL_BACKENDS = ("object", "packed", "packed-np")

#: Recognized backend names *on this interpreter*: ``packed-np`` (NumPy
#: int64 arenas + vectorized column kernels) appears only when numpy is
#: importable, so callers enumerating choices degrade gracefully.
BACKENDS = ALL_BACKENDS if _np is not None else ALL_BACKENDS[:2]

#: Backend used when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "packed"

#: Sentinel in the packed read-epoch array: the read map is inflated and
#: lives in the :attr:`PackedVarStore.rshared` side table.  Real packed
#: epochs are >= 2^TID_BITS and packed ⊥e is 0, so -1 is unambiguous.
READ_SHARED = -1


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend name: explicit > ``REPRO_STATE_BACKEND`` > default."""
    if name is None:
        name = os.environ.get("REPRO_STATE_BACKEND") or DEFAULT_BACKEND
    if name not in BACKENDS:
        if name in ALL_BACKENDS:
            raise ValueError(
                f"state backend {name!r} requires numpy, which is not "
                f"installed (install the [np] extra); "
                f"available backends: {BACKENDS}"
            )
        raise ValueError(f"unknown state backend {name!r}; choose from {BACKENDS}")
    return name


class PackedVarStore:
    """Arena of per-variable metadata as parallel integer arrays.

    Each tracked variable owns one *slot*; the slot's fields are:

    * ``wep[slot]``   — packed write epoch (0 = no write recorded),
    * ``wsite[slot]`` / ``windex[slot]`` — write site and event index,
    * ``rep[slot]``   — packed read epoch, 0 = no read recorded,
      :data:`READ_SHARED` = inflated map in :attr:`rshared`,
    * ``rsite[slot]`` / ``rindex[slot]`` — site/index of the epoch read.

    ``rshared[slot]`` maps ``tid -> (clock, site, index)`` for inflated
    concurrent-read maps, mirroring :class:`~repro.core.clocks.ReadMap`'s
    shared representation (including insertion order, which race reports
    depend on).  Slots released by PACER's metadata discard go on a free
    list and are reused by the next allocation.
    """

    __slots__ = (
        "index", "free",
        "wep", "wsite", "windex",
        "rep", "rsite", "rindex",
        "rshared",
    )

    def __init__(self) -> None:
        self.index: Dict[int, int] = {}
        self.free: List[int] = []
        self.wep: List[int] = []
        self.wsite: List[int] = []
        self.windex: List[int] = []
        self.rep: List[int] = []
        self.rsite: List[int] = []
        self.rindex: List[int] = []
        self.rshared: Dict[int, Dict[int, Tuple[int, int, int]]] = {}

    def alloc(self, var: int) -> int:
        """Claim a slot for ``var`` (reusing the free list), return it."""
        free = self.free
        if free:
            slot = free.pop()
            self.wep[slot] = 0
            self.wsite[slot] = 0
            self.windex[slot] = -1
            self.rep[slot] = 0
            self.rsite[slot] = 0
            self.rindex[slot] = -1
        else:
            slot = len(self.wep)
            self.wep.append(0)
            self.wsite.append(0)
            self.windex.append(-1)
            self.rep.append(0)
            self.rsite.append(0)
            self.rindex.append(-1)
        self.index[var] = slot
        return slot

    def release(self, var: int, slot: int) -> None:
        """Return ``var``'s slot to the free list (PACER metadata discard)."""
        del self.index[var]
        self.rshared.pop(slot, None)
        self.free.append(slot)

    def __len__(self) -> int:
        return len(self.index)

    # -- object-backend-compatible views ---------------------------------

    def view(self, var: int) -> Optional[VarState]:
        """Reconstruct ``var``'s state as a :class:`VarState`, or ``None``.

        For introspection and tests only — mutating the returned object
        does not write back to the arena.
        """
        slot = self.index.get(var)
        if slot is None:
            return None
        state = VarState()
        w = self.wep[slot]
        if w:
            state.write = unpack_epoch(w)
            state.write_site = self.wsite[slot]
            state.write_index = self.windex[slot]
        r = self.rep[slot]
        if r == READ_SHARED:
            entries = iter(self.rshared[slot].items())
            tid, (clock, site, idx) = next(entries)
            rm = ReadMap(tid, clock, site, idx)
            for tid, (clock, site, idx) in entries:
                rm.record(tid, clock, site, idx)
            state.read = rm
        elif r:
            e = unpack_epoch(r)
            state.read = ReadMap(e.tid, e.clock, self.rsite[slot], self.rindex[slot])
        return state

    def words(self) -> int:
        """Footprint in words; matches ``VarState.words()`` per variable."""
        total = 0
        rshared = self.rshared
        for slot in self.index.values():
            total += 2  # table entry: key + pointer
            if self.wep[slot]:
                total += 2  # packed epoch + site
            r = self.rep[slot]
            if r == READ_SHARED:
                total += 2 + 2 * len(rshared[slot])
            elif r:
                total += 2
        return total
