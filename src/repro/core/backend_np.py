"""The ``packed-np`` state backend: NumPy arenas + column-first kernels.

This module carries the vectorized half of the engine seam.  The
:class:`NumpyVarStore` is a drop-in for
:class:`~repro.core.backend.PackedVarStore` — identical slot ids,
allocation order, LIFO free-list reuse, read-map side table, and
``words()`` accounting — with the integer fields held in ``int64`` NumPy
arrays so whole :class:`~repro.trace.batch.EventBatch` columns can be
resolved against it in a handful of array operations.

The kernels implement the column-first contract (DESIGN.md):

* a **vectorized fast-path filter** classifies every event of a batch
  window from columns alone — no per-event Python — deciding which
  events provably follow the epoch fast paths of Algorithms 7/8 (same
  thread, ordered prior epochs, FASTTRACK) or never touch live metadata
  (PACER's non-sampling period, Algorithms 12/13 first line);
* surviving events run through the **exact scalar slow path**
  (:func:`~repro.core.engine.fasttrack_access_packed`,
  :func:`~repro.core.engine.pacer_access_packed`) in trace order,
  interleaved with every synchronization action, so races, counters,
  footprint words, and report bytes match the other backends exactly.

The FASTTRACK kernel additionally *applies* the fast events in bulk: a
per-variable group whose accesses are all by one thread at one clock
value (with prior epochs owned-and-ordered by that thread) reduces to at
most three representative updates — first read before the first
effective write, that write, and the first read after it — scattered
into the arena with array writes.  Thread clock values for the
classification are derived arithmetically (release/fork/volatile-write
increments counted per thread), never by running the handlers early, so
the slow path always sees live clocks.

NumPy is an optional extra: importing this module without numpy leaves
``HAVE_NUMPY`` false and constructing the store raises, while
``repro.core.backend.BACKENDS`` hides ``packed-np`` entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # optional extra: install repro[np]
    import numpy as np
except ImportError:  # pragma: no cover - exercised via BACKENDS gating
    np = None

from ..detectors.base import Race, READ_WRITE, WRITE_READ, WRITE_WRITE
from .backend import READ_SHARED
from .clocks import ReadMap, TID_BITS, TID_MASK, VectorClock, unpack_epoch
from .engine import pacer_access_packed
from .metadata import VarState

__all__ = [
    "HAVE_NUMPY",
    "NumpyVarStore",
    "fasttrack_kernel_np",
    "pacer_kernel_np",
]

HAVE_NUMPY = np is not None

#: dense var -> slot lookup is kept for vars below this bound (16 MiB of
#: int32 at the cap); vars above it (or negative) fall back to the dict
_LOOKUP_LIMIT = 1 << 22

#: events per vectorized window.  Windows bound the planning horizon for
#: reused thread ids (a fork reassigning an existing clock forces that
#: tid slow) while amortizing array-op setup; single-thread group
#: coverage is nearly flat in the window size, so bigger is better.
_WINDOW = 1 << 16

#: sentinel position "no such event" for the reduceat group minima
_BIG = 1 << 62

if HAVE_NUMPY:
    # one-gather kind classifiers (kind ids are 0..12; see trace.batch)
    _SYNC_TABLE = np.zeros(16, dtype=bool)
    _SYNC_TABLE[2:10] = True  # acq rel fork join vol_rd vol_wr sbegin send
    _INCR_TABLE = np.zeros(16, dtype=bool)
    _INCR_TABLE[[3, 4, 5, 7]] = True  # release fork join vol_wr
    _JOIN_TABLE = np.zeros(16, dtype=bool)
    _JOIN_TABLE[5] = True


class NumpyVarStore:
    """Arena of per-variable metadata as parallel NumPy arrays.

    Field-for-field the packed layout (see
    :class:`~repro.core.backend.PackedVarStore`): ``wep``/``rep`` hold
    packed epochs (``0`` = ⊥e, :data:`READ_SHARED` = inflated map in
    :attr:`rshared`), ``windex``/``rindex`` event indices, and
    ``wsite``/``rsite`` are *object* arrays because sites may be
    ``file:line`` strings (:data:`~repro.detectors.base.SiteId`).  The
    arrays are capacity-doubled with ``_n`` live slots; ``words()`` and
    ``view()`` run over live slots only, so arena capacity — including
    allocated-but-free slots — never inflates footprint accounting.

    Beyond the packed surface it adds what the column kernels need:
    :meth:`alloc_many` (bulk allocation in first-access order, so slot
    ids match event-at-a-time allocation) and :attr:`lookup`, a dense
    ``var -> slot + 1`` int32 map (``0`` = untracked) for whole-column
    variable resolution; the :attr:`index` dict stays authoritative.
    """

    __slots__ = (
        "index", "free",
        "wep", "wsite", "windex",
        "rep", "rsite", "rindex",
        "rshared", "lookup", "_n",
    )

    def __init__(self) -> None:
        if np is None:
            raise ImportError(
                "the packed-np state backend requires numpy "
                "(install the [np] extra)"
            )
        self.index: Dict[int, int] = {}
        self.free: List[int] = []
        cap = 1024
        self.wep = np.zeros(cap, dtype=np.int64)
        self.wsite = np.zeros(cap, dtype=object)
        self.windex = np.zeros(cap, dtype=np.int64)
        self.rep = np.zeros(cap, dtype=np.int64)
        self.rsite = np.zeros(cap, dtype=object)
        self.rindex = np.zeros(cap, dtype=np.int64)
        self.rshared: Dict[int, Dict[int, Tuple[int, int, int]]] = {}
        self.lookup = np.zeros(1024, dtype=np.int32)
        self._n = 0

    def _grow_slots(self) -> None:
        for name, dtype in (
            ("wep", np.int64), ("windex", np.int64),
            ("rep", np.int64), ("rindex", np.int64),
            ("wsite", object), ("rsite", object),
        ):
            arr = getattr(self, name)
            new = np.zeros(len(arr) * 2, dtype=dtype)
            new[: len(arr)] = arr
            setattr(self, name, new)

    def _grow_lookup(self, var: int) -> None:
        size = len(self.lookup)
        while size <= var:
            size *= 2
        size = min(size, _LOOKUP_LIMIT)
        new = np.zeros(size, dtype=np.int32)
        new[: len(self.lookup)] = self.lookup
        self.lookup = new

    def alloc(self, var: int) -> int:
        """Claim a slot for ``var`` (reusing the free list), return it."""
        free = self.free
        if free:
            slot = free.pop()
        else:
            slot = self._n
            if slot == len(self.wep):
                self._grow_slots()
            self._n = slot + 1
        self.wep[slot] = 0
        self.wsite[slot] = 0
        self.windex[slot] = -1
        self.rep[slot] = 0
        self.rsite[slot] = 0
        self.rindex[slot] = -1
        self.index[var] = slot
        if 0 <= var < _LOOKUP_LIMIT:
            if var >= len(self.lookup):
                self._grow_lookup(var)
            self.lookup[var] = slot + 1
        return slot

    def alloc_many(self, new_vars) -> None:
        """Allocate slots for ``new_vars`` in the given order.

        The kernels pass new variables in first-access order, which
        makes bulk allocation produce the same slot ids the scalar
        event-at-a-time path would have.  With an empty free list the
        slots are a fresh contiguous range, so the field resets and the
        lookup update collapse to sliced array writes.
        """
        k = len(new_vars)
        if self.free or k < 8:
            alloc = self.alloc
            for var in new_vars:
                alloc(var)
            return
        lo = self._n
        hi = lo + k
        while hi > len(self.wep):
            self._grow_slots()
        self._n = hi
        self.wep[lo:hi] = 0
        self.wsite[lo:hi] = 0
        self.windex[lo:hi] = -1
        self.rep[lo:hi] = 0
        self.rsite[lo:hi] = 0
        self.rindex[lo:hi] = -1
        slots = range(lo, hi)
        self.index.update(zip(new_vars, slots))
        vars_arr = np.asarray(new_vars, dtype=np.int64)
        in_range = (vars_arr >= 0) & (vars_arr < _LOOKUP_LIMIT)
        if in_range.all():
            vmax = int(vars_arr.max()) if k else 0
            if vmax >= len(self.lookup):
                self._grow_lookup(vmax)
            self.lookup[vars_arr] = np.arange(lo + 1, hi + 1, dtype=np.int32)
        else:
            for var, slot in zip(new_vars, slots):
                if 0 <= var < _LOOKUP_LIMIT:
                    if var >= len(self.lookup):
                        self._grow_lookup(var)
                    self.lookup[var] = slot + 1

    def release(self, var: int, slot: int) -> None:
        """Return ``var``'s slot to the free list (PACER metadata discard)."""
        del self.index[var]
        self.rshared.pop(slot, None)
        self.free.append(slot)
        if 0 <= var < len(self.lookup):
            self.lookup[var] = 0

    def __len__(self) -> int:
        return len(self.index)

    # -- object-backend-compatible views ---------------------------------

    def view(self, var: int) -> Optional[VarState]:
        """Reconstruct ``var``'s state as a :class:`VarState`, or ``None``.

        For introspection and tests only — mutating the returned object
        does not write back to the arena.  Array scalars are cast to
        plain ints so views compare equal across backends.
        """
        slot = self.index.get(var)
        if slot is None:
            return None
        state = VarState()
        w = int(self.wep[slot])
        if w:
            state.write = unpack_epoch(w)
            state.write_site = self.wsite[slot]
            state.write_index = int(self.windex[slot])
        r = int(self.rep[slot])
        if r == READ_SHARED:
            entries = iter(self.rshared[slot].items())
            tid, (clock, site, idx) = next(entries)
            rm = ReadMap(tid, clock, site, idx)
            for tid, (clock, site, idx) in entries:
                rm.record(tid, clock, site, idx)
            state.read = rm
        elif r:
            e = unpack_epoch(r)
            state.read = ReadMap(e.tid, e.clock, self.rsite[slot],
                                 int(self.rindex[slot]))
        return state

    def words(self) -> int:
        """Footprint in words over *live* slots only.

        Matches ``VarState.words()`` per variable; free (released) slots
        and unallocated arena capacity contribute nothing, keeping the
        Figure-10 space curves byte-equal across backends.
        """
        if not self.index:
            return 0
        slots = np.fromiter(self.index.values(), dtype=np.int64,
                            count=len(self.index))
        total = (
            2 * len(slots)
            + 2 * int(np.count_nonzero(self.wep[slots]))
            + 2 * int(np.count_nonzero(self.rep[slots]))
            + 2 * sum(map(len, self.rshared.values()))
        )
        return total


# -- shared kernel helpers ----------------------------------------------------


def _pick_sites(sites_np, sites_list, idx):
    """Gather sites at ``idx`` (an int array) as a list of plain objects."""
    if sites_np is not None:
        return sites_np[idx].tolist()
    return [sites_list[i] for i in idx.tolist()]


def _resolve_slots(arena, vars_arr):
    """Per-var slot ids (``-1`` = untracked): dense lookup, dict fallback."""
    lookup = arena.lookup
    slots = np.full(len(vars_arr), -1, dtype=np.int64)
    in_range = (vars_arr >= 0) & (vars_arr < len(lookup))
    iv = np.flatnonzero(in_range)
    if len(iv):
        slots[iv] = lookup[vars_arr[iv]].astype(np.int64) - 1
    rest = np.flatnonzero(~in_range)
    if len(rest):
        index_get = arena.index.get
        for i in rest.tolist():
            s = index_get(int(vars_arr[i]))
            if s is not None:
                slots[i] = s
    return slots


# -- FASTTRACK column kernel --------------------------------------------------


def fasttrack_kernel_np(det, kinds, tids, targets, sites_np, sites_list,
                        seen0):
    """Algorithms 7/8 over NumPy columns (the ``packed-np`` batch path).

    Column layout mirrors :func:`~repro.core.engine.fasttrack_kernel`;
    ``sites_np`` is an int64 site column or ``None`` with ``sites_list``
    carrying arbitrary :data:`SiteId` values instead.  Processing runs
    in windows of :data:`_WINDOW` events (see :func:`_ft_window`).
    """
    n = len(kinds)
    for start in range(0, n, _WINDOW):
        stop = min(start + _WINDOW, n)
        _ft_window(
            det,
            kinds[start:stop], tids[start:stop], targets[start:stop],
            None if sites_np is None else sites_np[start:stop],
            None if sites_list is None else sites_list[start:stop],
            seen0 + start,
        )
    det._events_seen = seen0 + n


def _ft_window(det, kinds, tids, targets, sites_np, sites_list, seen0):
    """One FASTTRACK window: classify columns, bulk-apply, then slow loop.

    The fast path must *prove*, from columns and window-entry state
    alone, that an event follows the epoch fast path and produces no
    race.  Everything else — synchronization actions, period markers,
    and every unproven access — replays through the exact scalar slow
    path in trace order with live clocks.
    """
    n = len(kinds)
    arena = det._arena
    counters = det.counters
    thread_clock = det._thread_clock
    pos = np.arange(n, dtype=np.int64)
    acc = kinds <= 1
    sync = _SYNC_TABLE[kinds]
    acc_pos = pos[acc]
    na = len(acc_pos)
    if na == 0:
        loop_pos = pos[sync]
        if len(loop_pos):
            _ft_run_slow(det, kinds, tids, targets, sites_np, sites_list,
                         loop_pos, None, seen0)
        det._events_seen = seen0 + n
        return
    acc_tid = tids[acc]
    acc_var = targets[acc]
    acc_wr = kinds[acc] == 1

    # --- clock planning: own components from increment counts ---------
    # Only four event shapes advance a thread's own clock component:
    # release / volatile write / fork (the parent) by the thread, and
    # join incrementing the *child*.  Joins into a thread (acquire,
    # volatile read, join-parent) never raise its own component as long
    # as every value it published is <= its current clock — guaranteed
    # unless a fork reassigned the thread's clock (tid reuse), which the
    # forced-slow set below rules out of the fast path.
    is_join = _JOIN_TABLE[kinds]
    incr = _INCR_TABLE[kinds]
    incr_pos = pos[incr]
    incr_tid = np.where(is_join[incr], targets[incr], tids[incr])
    tid_hi = int(acc_tid.max())
    tid_lo = int(acc_tid.min())
    if len(incr_tid):
        tid_hi = max(tid_hi, int(incr_tid.max()))
        tid_lo = min(tid_lo, int(incr_tid.min()))
    if 0 <= tid_lo and tid_hi < 4096:
        # dense tid space (the overwhelmingly common case): index the
        # per-thread tables by tid directly, no sorting or remapping
        nt = tid_hi + 1
        own0 = np.ones(nt, dtype=np.int64)
        for t, clock in thread_clock.items():
            if 0 <= t <= tid_hi:
                c = clock._c
                own0[t] = c[t] if t < len(c) else 0
        u_acc_tid = np.flatnonzero(np.bincount(acc_tid, minlength=nt))
        acc_col = acc_tid
        incr_col = incr_tid
    else:
        u_acc_tid = np.unique(acc_tid)
        all_tids = np.union1d(u_acc_tid, incr_tid)
        nt = len(all_tids)
        own0 = np.empty(nt, dtype=np.int64)
        for i, t in enumerate(all_tids.tolist()):
            clock = thread_clock.get(t)
            if clock is None:
                own0[i] = 1  # a fresh clock's own component is 1
            else:
                c = clock._c
                own0[i] = c[t] if t < len(c) else 0
        acc_col = np.searchsorted(all_tids, acc_tid)
        incr_col = np.searchsorted(all_tids, incr_tid)
    if len(incr_pos):
        z = np.zeros((len(incr_pos) + 1, nt), dtype=np.int64)
        z[np.arange(1, len(incr_pos) + 1), incr_col] = 1
        cum = z.cumsum(axis=0)
        # accesses are never increment events, so the inclusive prefix
        # count at an access equals the strict one — no binary search
        j = np.cumsum(incr)[acc]
        own = own0[acc_col] + cum[j, acc_col]
    else:
        own = own0[acc_col]

    # --- forced-slow threads (clock reassignment hazards) --------------
    # A fork assigns the child's clock to parent.c + increment(child).
    # For a *fresh* child (no clock, no earlier events) that is exactly
    # the own0 = 1 the planning assumes — no thread can hold a nonzero
    # component for a tid that never had a clock.  Only tid *reuse*
    # breaks the arithmetic: the reassigned clock may drop below values
    # the old incarnation published, which a later acquire could join
    # back in.  Such tids are forced onto the slow path permanently.
    reforked = det._np_reforked
    fork_idx = np.flatnonzero(kinds == 4)
    if len(fork_idx):
        children = [int(c) for c in targets[fork_idx].tolist()]
        cmax = max(children)
        if 0 <= min(children) and cmax < (1 << 16):
            # first position each tid acts at, and first position it is
            # a fork/join target: a reversed duplicate-index scatter
            # keeps the earliest position per id — O(n), no sorting.
            # Ids outside [0, cmax] (e.g. the -1 marker actor) land in a
            # spill cell that no fork child can alias.
            size = cmax + 2
            spill = size - 1
            at = np.where((tids >= 0) & (tids <= cmax), tids, spill)
            first_act = np.full(size, n, dtype=np.int64)
            first_act[at[::-1]] = pos[::-1]
            tmask = (kinds == 4) | is_join
            tpos = pos[tmask]
            tt = targets[tmask]
            tt = np.where((tt >= 0) & (tt <= cmax), tt, spill)
            first_tgt = np.full(size, n, dtype=np.int64)
            first_tgt[tt[::-1]] = tpos[::-1]
            for fi, child in zip(fork_idx.tolist(), children):
                if child in reforked:
                    continue
                if child in thread_clock or min(
                        int(first_act[child]), int(first_tgt[child])) < fi:
                    reforked.add(child)
        else:
            # pathological id space: scan per fork (forks are rare)
            tmask = (kinds == 4) | is_join
            for fi, child in zip(fork_idx.tolist(), children):
                if child in reforked:
                    continue
                if child in thread_clock or bool(
                        np.any(tids[:fi] == child)
                        or np.any((tmask[:fi]) & (targets[:fi] == child))):
                    reforked.add(child)
    forced = np.zeros(na, dtype=bool)
    if reforked:
        for t in reforked:
            forced |= acc_tid == t

    # --- per-variable grouping ----------------------------------------
    # radix argsort: narrower keys mean fewer passes, and var ids almost
    # always fit int32
    if int(acc_var.min()) >= 0 and int(acc_var.max()) < (1 << 31):
        order = np.argsort(acc_var.astype(np.int32), kind="stable")
    else:
        order = np.argsort(acc_var, kind="stable")
    svar = acc_var[order]
    spos = acc_pos[order]
    stid = acc_tid[order]
    sown = own[order]
    swr = acc_wr[order]
    sforced = forced[order]
    starts = np.flatnonzero(
        np.concatenate(([True], svar[1:] != svar[:-1])))
    counts = np.diff(np.concatenate((starts, [na])))
    g_var = svar[starts]

    # --- allocate new variables ----------------------------------------
    g_slot = _resolve_slots(arena, g_var)
    new_idx = np.flatnonzero(g_slot < 0)
    if len(new_idx):
        # slot numbering is unobservable (views, counters and footprint
        # never expose slot ids), so allocation order is free
        arena.alloc_many(g_var[new_idx].tolist())
        counters.words_allocated += 2 * len(new_idx)
        g_slot = _resolve_slots(arena, g_var)  # arrays may have grown
    wep, rep = arena.wep, arena.rep
    w0 = wep[g_slot]
    r0 = rep[g_slot]

    # --- fast-run classification ----------------------------------------
    # Each group's *head run* — the longest prefix of accesses by its
    # first thread t — is fast when the prior epochs are owned by t and
    # ordered before t's first access, and t's clock planning is
    # trustworthy (not forced slow).  t's own component never decreases
    # inside a window, so every head-run access is a same-epoch no-op or
    # a thread-local epoch advance — provably race-free.  Accesses from
    # the first thread switch onward replay through the slow path, which
    # sees exactly the bulk-applied head-run state: all head-run events
    # precede them in trace order, and syncs never touch var state.
    gt = stid[starts]
    ng = len(starts)
    gid = np.repeat(np.arange(ng, dtype=np.int64), counts)
    idx_a = np.arange(na, dtype=np.int64)
    diff = stid != gt[gid]
    first_bad = np.minimum.reduceat(np.where(diff, idx_a, na), starts)
    in_head = idx_a < first_bad[gid]
    o_first = sown[starts]
    w_ok = (w0 == 0) | (((w0 & TID_MASK) == gt) & ((w0 >> TID_BITS) <= o_first))
    r_ok = (r0 == 0) | (
        (r0 != READ_SHARED)
        & ((r0 & TID_MASK) == gt)
        & ((r0 >> TID_BITS) <= o_first)
    )
    fast_g = w_ok & r_ok & ~sforced[starts]
    fast_ev_sorted = in_head & fast_g[gid]

    # --- group reduction ------------------------------------------------
    # Collapse each head run to its net effect.  Writes: a write is
    # *effective* (allocates words, clears the read slot) iff its epoch
    # differs from the previous write's (or w0 for the first); the final
    # write state comes from the last effective write.  Reads: a read
    # allocates words iff it lands on an empty read slot — r0 == 0 at
    # the start, or right after an effective write; the final read state
    # comes from the first read of the last epoch-run among reads
    # surviving the last effective write.
    spo = (sown << TID_BITS) | stid
    srd_fast = ~swr
    srd_fast &= fast_ev_sorted

    eff_w_per_g = np.zeros(ng, dtype=np.int64)
    g_few_idx = np.full(ng, -1, dtype=np.int64)  # last effective write
    few_pos_g = np.full(ng, -1, dtype=np.int64)  # its window position
    weff_mask = np.zeros(na, dtype=bool)
    widx = np.flatnonzero(swr & fast_ev_sorted)
    if len(widx):
        wgid = gid[widx]
        wspo = spo[widx]
        wfirst = np.empty(len(widx), dtype=bool)
        wfirst[0] = True
        np.not_equal(wgid[1:], wgid[:-1], out=wfirst[1:])
        prev_wspo = np.empty(len(widx), dtype=np.int64)
        prev_wspo[1:] = wspo[:-1]
        prev_wspo[wfirst] = w0[wgid[wfirst]]
        weff = wspo != prev_wspo
        eff_w_per_g += np.bincount(wgid[weff], minlength=ng)
        weff_mask[widx[weff]] = True
        eidx = widx[weff]
        if len(eidx):
            egid = wgid[weff]
            elast = np.empty(len(eidx), dtype=bool)
            elast[-1] = True
            np.not_equal(egid[1:], egid[:-1], out=elast[:-1])
            g_few_idx[egid[elast]] = eidx[elast]
            few_pos_g[egid[elast]] = spos[eidx[elast]]
    has_w = eff_w_per_g > 0

    plus2_per_g = np.zeros(ng, dtype=np.int64)
    g_rrep_idx = np.full(ng, -1, dtype=np.int64)
    has_r_after = np.zeros(ng, dtype=bool)
    ridx = np.flatnonzero(srd_fast)
    if len(ridx):
        # walk reads and effective writes together: a read allocates
        # (+2 words) iff the previous relevant event was an effective
        # write, or it opens the group with r0 == 0
        rel = srd_fast | weff_mask
        relidx = np.flatnonzero(rel)
        relgid = gid[relidx]
        relread = srd_fast[relidx]
        relfirst = np.empty(len(relidx), dtype=bool)
        relfirst[0] = True
        np.not_equal(relgid[1:], relgid[:-1], out=relfirst[1:])
        prev_is_w = np.empty(len(relidx), dtype=bool)
        prev_is_w[0] = False
        np.logical_not(relread[:-1], out=prev_is_w[1:])
        plus2 = relread & np.where(relfirst, r0[relgid] == 0, prev_is_w)
        plus2_per_g += np.bincount(relgid[plus2], minlength=ng)
        # reads surviving the last effective write carry the final state
        r_after = spos[ridx] > few_pos_g[gid[ridx]]
        aidx = ridx[r_after]
        if len(aidx):
            agid = gid[aidx]
            has_r_after[agid] = True
            aspo = spo[aidx]
            alast = np.empty(len(aidx), dtype=bool)
            alast[-1] = True
            np.not_equal(agid[1:], agid[:-1], out=alast[:-1])
            g_last_rspo = np.zeros(ng, dtype=np.int64)
            g_last_rspo[agid[alast]] = aspo[alast]
            # first read of the final epoch-run (same-epoch successors
            # never update the recorded site/index)
            m = aspo == g_last_rspo[agid]
            mfirst = np.empty(len(aidx), dtype=bool)
            mfirst[0] = True
            np.logical_or(agid[1:] != agid[:-1], ~m[:-1], out=mfirst[1:])
            mfirst &= m
            g_rrep_idx[agid[mfirst]] = aidx[mfirst]

    # --- apply fast groups in bulk -------------------------------------
    fidx = np.flatnonzero(fast_g)
    if len(fidx):
        wsel = fidx[has_w[fidx]]
        if len(wsel):
            slots = g_slot[wsel]
            rep_idx = g_few_idx[wsel]
            wep[slots] = spo[rep_idx]
            arena.windex[slots] = seen0 + spos[rep_idx]
            arena.wsite[slots] = _pick_sites(sites_np, sites_list,
                                             spos[rep_idx])
        # skip groups whose reads were all same-epoch with r0: the
        # scalar path leaves the recorded site/index untouched there
        rmask = has_r_after[fidx] & ~(
            ~has_w[fidx]
            & (spo[np.maximum(g_rrep_idx[fidx], 0)] == r0[fidx])
        )
        rsel = fidx[rmask]
        if len(rsel):
            slots = g_slot[rsel]
            rep_idx = g_rrep_idx[rsel]
            rep[slots] = spo[rep_idx]
            arena.rindex[slots] = seen0 + spos[rep_idx]
            arena.rsite[slots] = _pick_sites(sites_np, sites_list,
                                             spos[rep_idx])
        csel = fidx[has_w[fidx] & ~has_r_after[fidx]]
        if len(csel):
            rep[g_slot[csel]] = 0  # final write cleared the read map
        counters.words_allocated += 2 * int(
            eff_w_per_g[fidx].sum() + plus2_per_g[fidx].sum())
        n_fast = int(np.count_nonzero(fast_ev_sorted))
        counters.reads_slow_sampling += len(ridx)
        counters.writes_slow_sampling += n_fast - len(ridx)
    det._threads.update(u_acc_tid.tolist())

    # --- ordered slow loop ---------------------------------------------
    loop_pos = np.sort(np.concatenate((spos[~fast_ev_sorted], pos[sync])))
    if len(loop_pos):
        # every window var already has a slot, so hand the loop
        # pre-resolved slots (sync positions carry junk, never read)
        ev_slot = np.empty(n, dtype=np.int64)
        ev_slot[spos] = g_slot[gid]
        _ft_run_slow(det, kinds, tids, targets, sites_np, sites_list,
                     loop_pos, ev_slot, seen0)
    # threads whose window events were all fast accesses still need
    # their clock materialized: the scalar path creates it (+2 words) at
    # the first access, every slow touch creates the identical fresh
    # clock through _clock_of, so creating the stragglers afterwards is
    # observationally the same
    for t in u_acc_tid.tolist():
        if t not in thread_clock:
            clock = VectorClock()
            clock.increment(t)
            thread_clock[t] = clock
            counters.words_allocated += 2
    det._events_seen = seen0 + n


def _ft_run_slow(det, kinds, tids, targets, sites_np, sites_list, loop_pos,
                 ev_slot, seen0):
    """Replay the surviving window events in trace order, exactly.

    Accesses run an inlined transcription of
    :func:`~repro.core.engine.fasttrack_access_packed` (which counts
    itself) with the hot state pre-bound and slots pre-resolved
    (``ev_slot``; every window var is allocated before the loop runs);
    synchronization and period events dispatch to the live handlers with
    ``_events_seen`` maintained like the list kernel.
    """
    lp = loop_pos.tolist()
    k_l = kinds[loop_pos].tolist()
    t_l = tids[loop_pos].tolist()
    g_l = targets[loop_pos].tolist()
    sl_l = ev_slot[loop_pos].tolist() if ev_slot is not None else lp
    if sites_np is not None:
        s_l = sites_np[loop_pos].tolist()
    else:
        s_l = [sites_list[i] for i in lp]
    threads_add = det._threads.add
    # access hot state, pre-bound once per window; the access branch
    # below inlines fasttrack_access_packed — keep the two
    # transcriptions in lockstep
    arena = det._arena
    counters = det.counters
    thread_clock = det._thread_clock
    clock_get = thread_clock.get
    rshared = arena.rshared
    wep, rep = arena.wep, arena.rep
    wsite, rsite = arena.wsite, arena.rsite
    windex, rindex = arena.windex, arena.rindex
    races_append = det.races.append
    acquire, release = det.acquire, det.release
    fork, join = det.fork, det.join
    vol_read, vol_write = det.vol_read, det.vol_write
    for p, k, tid, target, site, slot in zip(lp, k_l, t_l, g_l, s_l, sl_l):
        if k <= 1:
            clock = clock_get(tid)
            if clock is None:
                clock = VectorClock()
                clock.increment(tid)
                thread_clock[tid] = clock
                counters.words_allocated += 2
            c = clock._c
            own = c[tid] if tid < len(c) else 0
            packed_own = (own << TID_BITS) | tid
            w = int(wep[slot])
            if k == 0:  # rd (Algorithm 7)
                counters.reads_slow_sampling += 1
                r = int(rep[slot])
                if r == packed_own:
                    continue  # same read epoch: no action
                if w:
                    wt = w & TID_MASK
                    wc = w >> TID_BITS
                    if wc > (c[wt] if wt < len(c) else 0):
                        races_append(
                            Race(target, WRITE_READ, wt, wc, wsite[slot],
                                 tid, site, seen0 + p, int(windex[slot]))
                        )
                if r == 0:
                    rep[slot] = packed_own
                    rsite[slot] = site
                    rindex[slot] = seen0 + p
                    counters.words_allocated += 2
                elif r != READ_SHARED:
                    rt = r & TID_MASK
                    if (r >> TID_BITS) <= (c[rt] if rt < len(c) else 0):
                        rep[slot] = packed_own  # overwrite read epoch
                        rsite[slot] = site
                        rindex[slot] = seen0 + p
                    else:
                        rshared[slot] = {
                            rt: (r >> TID_BITS, rsite[slot],
                                 int(rindex[slot])),
                            tid: (own, site, seen0 + p),
                        }
                        rep[slot] = READ_SHARED
                        counters.words_allocated += 2
                else:
                    rshared[slot][tid] = (own, site, seen0 + p)
                    counters.words_allocated += 2
            else:  # wr (Algorithm 8)
                counters.writes_slow_sampling += 1
                if w == packed_own:
                    continue  # same write epoch: no action
                if w:
                    wt = w & TID_MASK
                    wc = w >> TID_BITS
                    if wc > (c[wt] if wt < len(c) else 0):
                        races_append(
                            Race(target, WRITE_WRITE, wt, wc, wsite[slot],
                                 tid, site, seen0 + p, int(windex[slot]))
                        )
                r = int(rep[slot])
                if r:
                    if r != READ_SHARED:
                        rt = r & TID_MASK
                        rc = r >> TID_BITS
                        if rc > (c[rt] if rt < len(c) else 0):
                            races_append(
                                Race(target, READ_WRITE, rt, rc,
                                     rsite[slot], tid, site, seen0 + p,
                                     int(rindex[slot]))
                            )
                    else:
                        for u, (rc, rs, ri) in rshared[slot].items():
                            if rc > (c[u] if u < len(c) else 0):
                                races_append(
                                    Race(target, READ_WRITE, u, rc, rs,
                                         tid, site, seen0 + p, ri)
                                )
                        del rshared[slot]
                    rep[slot] = 0  # modified FASTTRACK: clear read map
                wep[slot] = packed_own
                wsite[slot] = site
                windex[slot] = seen0 + p
                counters.words_allocated += 2
        elif k >= 10:
            continue
        elif k == 8:
            det._events_seen = seen0 + p + 1
            det.begin_sampling()
        elif k == 9:
            det._events_seen = seen0 + p + 1
            det.end_sampling()
        else:
            det._events_seen = seen0 + p + 1
            threads_add(tid)
            if k == 2:
                acquire(tid, target)
            elif k == 3:
                release(tid, target)
            elif k == 4:
                threads_add(target)
                fork(tid, target)
            elif k == 5:
                join(tid, target)
            elif k == 6:
                vol_read(tid, target)
            else:  # k == 7
                vol_write(tid, target)


# -- PACER column kernel ------------------------------------------------------


def pacer_kernel_np(det, kinds, tids, targets, sites_np, sites_list, seen0):
    """Algorithms 12/13 over NumPy columns (the ``packed-np`` batch path).

    PACER's fast path is *absence*: outside sampling periods, an access
    to a variable with no live metadata does no work and allocates no
    space.  The whole batch is classified at once — an access is slow
    only if its variable is tracked at batch entry or at/after the
    variable's first in-sampling access (the only way metadata can
    appear mid-batch; non-sampling accesses never allocate and releases
    only shrink the tracked set).  Slow accesses, synchronization, and
    period markers replay in trace order through the scalar
    transcription, which re-checks trackedness — so an access whose
    metadata was discarded mid-batch still lands on the inlined fast
    path with identical counters.
    """
    n = len(kinds)
    counters = det.counters
    pos = np.arange(n, dtype=np.int64)
    acc = kinds <= 1
    sync = _SYNC_TABLE[kinds]
    acc_pos = pos[acc]
    na = len(acc_pos)
    if na == 0:
        loop_pos = pos[sync]
        if len(loop_pos):
            _pacer_run_slow(det, kinds, tids, targets, sites_np, sites_list,
                            loop_pos, seen0)
        det._events_seen = seen0 + n
        return
    acc_var = targets[acc]
    acc_tid = tids[acc]
    acc_wr = kinds[acc] == 1

    # sampling state at each access position
    bmask = (kinds == 8) | (kinds == 9)
    bpos = pos[bmask]
    if len(bpos):
        bstate = kinds[bpos] == 8
        j = np.searchsorted(bpos, acc_pos, side="right") - 1
        in_samp = np.where(j >= 0, bstate[np.maximum(j, 0)], det.sampling)
    else:
        if det.sampling:
            in_samp = np.ones(na, dtype=bool)
        else:
            in_samp = np.zeros(na, dtype=bool)

    # tracked at batch entry
    arena = det._arena
    if arena.index:
        tracked0 = _resolve_slots(arena, acc_var) >= 0
    else:
        tracked0 = np.zeros(na, dtype=bool)

    # first in-sampling access per variable
    order = np.argsort(acc_var, kind="stable")
    svar = acc_var[order]
    spos = acc_pos[order]
    ssamp = in_samp[order]
    starts = np.flatnonzero(
        np.concatenate(([True], svar[1:] != svar[:-1])))
    counts = np.diff(np.concatenate((starts, [na])))
    fsamp = np.minimum.reduceat(np.where(ssamp, spos, _BIG), starts)
    slow_sorted = tracked0[order] | (spos >= np.repeat(fsamp, counts))

    # bulk-retire the provably fast accesses
    fast_sorted = ~slow_sorted
    swr = acc_wr[order]
    counters.reads_fast_nonsampling += int(
        np.count_nonzero(fast_sorted & ~swr))
    counters.writes_fast_nonsampling += int(
        np.count_nonzero(fast_sorted & swr))
    det._threads.update(np.unique(acc_tid).tolist())

    loop_pos = np.sort(np.concatenate((spos[slow_sorted], pos[sync])))
    if len(loop_pos):
        _pacer_run_slow(det, kinds, tids, targets, sites_np, sites_list,
                        loop_pos, seen0)
    det._events_seen = seen0 + n


def _pacer_run_slow(det, kinds, tids, targets, sites_np, sites_list,
                    loop_pos, seen0):
    """Trace-order replay of PACER's surviving events (exact handlers)."""
    lp = loop_pos.tolist()
    k_l = kinds[loop_pos].tolist()
    t_l = tids[loop_pos].tolist()
    g_l = targets[loop_pos].tolist()
    if sites_np is not None:
        s_l = sites_np[loop_pos].tolist()
    else:
        s_l = [sites_list[i] for i in lp]
    threads_add = det._threads.add
    for p, k, tid, target, site in zip(lp, k_l, t_l, g_l, s_l):
        if k <= 1:
            pacer_access_packed(det, k, tid, target, site, seen0 + p)
        elif k >= 10:
            continue
        elif k == 8:
            det._events_seen = seen0 + p + 1
            det.begin_sampling()
        elif k == 9:
            det._events_seen = seen0 + p + 1
            det.end_sampling()
        else:
            det._events_seen = seen0 + p + 1
            threads_add(tid)
            if k == 2:
                det.acquire(tid, target)
            elif k == 3:
                det.release(tid, target)
            elif k == 4:
                threads_add(target)
                det.fork(tid, target)
            elif k == 5:
                det.join(tid, target)
            elif k == 6:
                det.vol_read(tid, target)
            else:  # k == 7
                det.vol_write(tid, target)
