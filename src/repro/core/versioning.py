"""Vector clock versions, version epochs, and clock sharing (paper §3.2).

During non-sampling periods PACER stops incrementing thread clocks, so
redundant synchronization reproduces identical clock values.  PACER
detects this redundancy with two mechanisms built here:

* **Versions.**  Every thread numbers the distinct values its vector
  clock takes (the *version*); a thread's *version vector* records, per
  other thread, the latest version it has received via a join.  A lock or
  volatile stores a *version epoch* ``v@t`` meaning "my clock equals
  version ``v`` of thread ``t``'s clock".  A constant-time version
  comparison then proves ``clock_m ⊑ clock_t`` without touching either
  clock (Table 7, Rules 4/5/7/8).

* **Sharing.**  In non-sampling periods a lock release performs a
  *shallow* copy — the lock and the thread reference the same
  :class:`SharableClock`, marked shared.  Any later mutation first clones
  the clock (copy-on-write), so sharing never changes observable values.

The paper's pseudocode overloads ``null`` version epochs; we use two
distinct sentinels (see DESIGN.md, errata 3):

* :data:`BOTTOM_VE` — the initial state ⊥ve.  The associated clock is the
  bottom clock, so a join against it is always skippable.
* :data:`TOP_VE` — ⊤ve.  The clock is a join over several threads'
  clocks, so the version fast path must *fail* and fall back to a full
  comparison.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from .clocks import VectorClock

__all__ = [
    "VersionEpoch",
    "BOTTOM_VE",
    "TOP_VE",
    "SharableClock",
]


class VersionEpoch(NamedTuple):
    """A version epoch ``v@t``: version ``v`` of thread ``t``'s clock."""

    version: int
    tid: int

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"v{self.version}@{self.tid}"


#: ⊥ve — initial version epoch; the clock it describes is the bottom clock.
BOTTOM_VE = VersionEpoch(0, -1)

#: ⊤ve — the clock is a multi-thread join; no single-thread version exists.
TOP_VE = VersionEpoch(-1, -2)


class SharableClock(VectorClock):
    """A vector clock that may be shared by several synchronization objects.

    ``shared`` is sticky in the paper ("once an object is marked shared it
    remains that way for the rest of its lifetime"); here a *clone* starts
    unshared, matching Algorithm 10/11's ``clone`` + ``setShared(false)``.
    """

    __slots__ = ("shared",)

    def __init__(self, values: Optional[List[int]] = None) -> None:
        super().__init__(values)
        self.shared = False

    def clone(self) -> "SharableClock":
        """Deep, unshared copy (the paper's ``clone`` operation)."""
        return SharableClock(self._c)

    def copy(self) -> "SharableClock":
        return self.clone()
