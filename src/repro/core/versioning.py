"""Vector clock versions, version epochs, and clock sharing (paper §3.2).

During non-sampling periods PACER stops incrementing thread clocks, so
redundant synchronization reproduces identical clock values.  PACER
detects this redundancy with two mechanisms built here:

* **Versions.**  Every thread numbers the distinct values its vector
  clock takes (the *version*); a thread's *version vector* records, per
  other thread, the latest version it has received via a join.  A lock or
  volatile stores a *version epoch* ``v@t`` meaning "my clock equals
  version ``v`` of thread ``t``'s clock".  A constant-time version
  comparison then proves ``clock_m ⊑ clock_t`` without touching either
  clock (Table 7, Rules 4/5/7/8).

* **Sharing.**  In non-sampling periods a lock release performs a
  *shallow* copy — the lock and the thread reference the same
  :class:`SharableClock`, marked shared.  Any later mutation first clones
  the clock (copy-on-write), so sharing never changes observable values.

The paper's pseudocode overloads ``null`` version epochs; we use two
distinct sentinels (see DESIGN.md, errata 3):

* :data:`BOTTOM_VE` — the initial state ⊥ve.  The associated clock is the
  bottom clock, so a join against it is always skippable.
* :data:`TOP_VE` — ⊤ve.  The clock is a join over several threads'
  clocks, so the version fast path must *fail* and fall back to a full
  comparison.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from .clocks import TID_BITS, TID_MASK, MAX_TID, VectorClock

__all__ = [
    "VersionEpoch",
    "BOTTOM_VE",
    "TOP_VE",
    "SharableClock",
    "VE_BOTTOM",
    "VE_TOP",
    "pack_vepoch",
    "unpack_vepoch",
    "vepoch_version",
    "vepoch_tid",
]


class VersionEpoch(NamedTuple):
    """A version epoch ``v@t``: version ``v`` of thread ``t``'s clock."""

    version: int
    tid: int

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"v{self.version}@{self.tid}"


#: ⊥ve — initial version epoch; the clock it describes is the bottom clock.
BOTTOM_VE = VersionEpoch(0, -1)

#: ⊤ve — the clock is a multi-thread join; no single-thread version exists.
TOP_VE = VersionEpoch(-1, -2)


# -- packed version epochs ---------------------------------------------------
#
# The detectors store version epochs packed into one int, mirroring
# ``pack_epoch``: ``(version << TID_BITS) | tid``.  Versions start at 1
# (``inc_t(⊥v)`` runs before any sync op, Equation 7), so real packed
# vepochs are >= ``1 << TID_BITS`` and the small sentinels below are
# unambiguous.  The :class:`VersionEpoch` NamedTuple remains the
# unpacked/reporting form.

#: Packed ⊥ve — initial version epoch (a real vepoch is always >= 2^TID_BITS).
VE_BOTTOM = 0

#: Packed ⊤ve — multi-thread join; the version fast path must fail.
VE_TOP = -1


def pack_vepoch(version: int, tid: int) -> int:
    """Pack ``v@t`` into ``(version << TID_BITS) | tid``.

    ``version`` must be positive and ``tid`` must fit in
    :data:`~repro.core.clocks.TID_BITS`; the sentinels :data:`VE_BOTTOM`
    and :data:`VE_TOP` are not constructible through this function.
    """
    if not 0 <= tid <= MAX_TID:
        raise ValueError(f"tid {tid} outside [0, {MAX_TID}]")
    if version <= 0:
        raise ValueError(f"version {version} must be >= 1")
    return (version << TID_BITS) | tid


def unpack_vepoch(packed: int) -> VersionEpoch:
    """Inverse of :func:`pack_vepoch`; sentinels map to their NamedTuples."""
    if packed == VE_BOTTOM:
        return BOTTOM_VE
    if packed == VE_TOP:
        return TOP_VE
    return VersionEpoch(packed >> TID_BITS, packed & TID_MASK)


def vepoch_version(packed: int) -> int:
    """Version field of a packed (non-sentinel) vepoch."""
    return packed >> TID_BITS


def vepoch_tid(packed: int) -> int:
    """Thread-id field of a packed (non-sentinel) vepoch."""
    return packed & TID_MASK


class SharableClock(VectorClock):
    """A vector clock that may be shared by several synchronization objects.

    ``shared`` is sticky in the paper ("once an object is marked shared it
    remains that way for the rest of its lifetime"); here a *clone* starts
    unshared, matching Algorithm 10/11's ``clone`` + ``setShared(false)``.
    """

    __slots__ = ("shared",)

    def __init__(self, values: Optional[List[int]] = None) -> None:
        super().__init__(values)
        self.shared = False

    def clone(self) -> "SharableClock":
        """Deep, unshared copy (the paper's ``clone`` operation).

        The result never aliases this clock's component list, even when
        this clock is marked ``shared`` — cloning is exactly how a shared
        clock escapes copy-on-write before a mutation.
        """
        return SharableClock(self._c)

    def copy(self) -> "SharableClock":
        """Alias for :meth:`clone`: deep, unshared copy.

        Overrides :meth:`VectorClock.copy` so that code handling plain
        vector clocks still gets a :class:`SharableClock` back (unshared,
        like every freshly constructed clock).
        """
        return self.clone()
