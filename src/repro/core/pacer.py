"""The PACER detector (paper §3, Algorithms 9-13 and 16, Tables 4-7).

PACER divides execution into global *sampling* and *non-sampling*
periods.  While sampling it is exactly FASTTRACK.  While not sampling it

* performs **no work and allocates no space** for accesses to variables
  with no live metadata (the inlined fast path),
* **discards** read/write metadata that FASTTRACK would have replaced or
  discarded — once a sampled access can no longer be the *last* access to
  race with a future access, it is dropped,
* stops incrementing thread clocks (non-sampling periods are
  *timeless*), and detects the resulting redundant communication with
  **version epochs** (skip joins in O(1)) and **shared clocks** (shallow
  copies at lock releases), eliminating nearly all O(n) work.

The guarantee: a race whose first access falls inside a sampling period
(and is the last access racing with the second) is always reported, so
each dynamic race is detected with probability equal to the sampling
rate.

Deviations from the paper's pseudocode (all justified by its own formal
semantics in Table 7) are listed in DESIGN.md under "errata".

Feature flags (``use_versions``, ``use_sharing``, ``discard_metadata``)
exist for the ablation benchmarks and default to the paper's behaviour.
"""

from __future__ import annotations

from itertools import chain, compress as _compress
from typing import Dict, Optional

from ..detectors.base import Detector, Race, READ_WRITE, WRITE_READ, WRITE_WRITE
from ..trace.batch import ACCESS01_TABLE, EventBatch, RUN_MASK_TABLE
from .backend import PackedVarStore
from .clocks import Epoch, ReadMap, TID_BITS, TID_MASK, epoch_leq_vc
from .engine import pacer_access_packed, pacer_kernel
from .metadata import SyncMeta, ThreadMeta, VarState, footprint_words
from .versioning import VE_BOTTOM, VE_TOP, SharableClock

__all__ = ["PacerDetector"]


#: the run-scan translation tables live with the columnar encoding now;
#: the old private names remain as aliases for external readers
_RUN_MASK_TABLE = RUN_MASK_TABLE
_ACCESS01_TABLE = ACCESS01_TABLE


class PacerDetector(Detector):
    """Sampling race detector with proportional detection and overhead."""

    name = "pacer"

    def __init__(
        self,
        sampling: bool = False,
        use_versions: bool = True,
        use_sharing: bool = True,
        discard_metadata: bool = True,
        reclaim_dead_threads: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend)
        self.sampling = sampling
        self.use_versions = use_versions
        self.use_sharing = use_sharing
        self.discard_metadata = discard_metadata
        self.reclaim_dead_threads = reclaim_dead_threads
        self._thread: Dict[int, ThreadMeta] = {}
        self._lock: Dict[int, SyncMeta] = {}
        self._vol: Dict[int, SyncMeta] = {}
        if self.backend_name == "packed-np":
            from .backend_np import NumpyVarStore, pacer_kernel_np

            self._arena = NumpyVarStore()
            self._vars: Optional[Dict[int, VarState]] = None
            self._np_kernel = pacer_kernel_np
        elif self.backend_name == "packed":
            self._arena: Optional[PackedVarStore] = PackedVarStore()
            self._vars = None
            self._np_kernel = None
        else:
            self._arena = None
            self._vars = {}
            self._np_kernel = None

    # -- metadata helpers ---------------------------------------------------

    def _thread_meta(self, tid: int) -> ThreadMeta:
        meta = self._thread.get(tid)
        if meta is None:
            meta = ThreadMeta(tid)
            self._thread[tid] = meta
            self.counters.words_allocated += 4
        return meta

    # -- low-level clock operations (Algorithms 9, 10, 11) ---------------------

    def _inc(self, meta: ThreadMeta, tid: int) -> None:
        """Vector clock increment (Algorithm 10): no-op unless sampling."""
        if not self.sampling:
            return
        clock = meta.clock
        if clock.shared:
            clock = clock.clone()
            meta.clock = clock
            self.counters.clones += 1
            self.counters.words_allocated += 1 + len(clock)
        clock.increment(tid)
        meta.ver.increment(tid)
        self.counters.increments += 1

    def _copy_to_sync(self, sync: SyncMeta, tmeta: ThreadMeta, tid: int) -> None:
        """Vector clock copy ``C_o <- C_t`` (Algorithm 9)."""
        if not self.sampling and self.use_sharing:
            tmeta.clock.shared = True
            sync.clock = tmeta.clock  # shallow: share the vector clock
            self.counters.copies_shallow_nonsampling += 1
        else:
            sync.clock = tmeta.clock.clone()  # deep element-by-element copy
            if self.sampling:
                self.counters.copies_deep_sampling += 1
            else:
                self.counters.copies_deep_nonsampling += 1
            self.counters.words_allocated += 1 + len(sync.clock)
        sync.vepoch = tmeta.vepoch(tid)

    def _count_join(self, fast: bool) -> None:
        c = self.counters
        if fast:
            if self.sampling:
                c.joins_fast_sampling += 1
            else:
                c.joins_fast_nonsampling += 1
        else:
            if self.sampling:
                c.joins_slow_sampling += 1
            else:
                c.joins_slow_nonsampling += 1

    def _join_into_thread(
        self,
        tmeta: ThreadMeta,
        tid: int,
        source_clock: Optional[SharableClock],
        source_vepoch: int,
    ) -> None:
        """Vector clock join ``C_t <- C_t ⊔ C_o`` (Algorithm 11 / Table 7).

        ``source_vepoch`` is a packed version epoch (``VE_BOTTOM``,
        ``VE_TOP``, or ``pack_vepoch(v, t)``).

        Rule 4 (version fast path): already received this version — O(1).
        Rule 5 (happens-before): clocks ordered; record the version only.
        Rule 6 (concurrent): real join; clone first if shared.
        """
        if source_clock is None or source_vepoch == VE_BOTTOM:
            # The source clock is the bottom clock; a join is a no-op.
            self._count_join(fast=True)
            return
        real = source_vepoch != VE_TOP
        if real:
            sv_tid = source_vepoch & TID_MASK
            sv_version = source_vepoch >> TID_BITS
            if self.use_versions and tmeta.ver.get(sv_tid) >= sv_version:
                self._count_join(fast=True)  # Rule 4: same version epoch
                return
        self._count_join(fast=False)
        if source_clock.leq(tmeta.clock):
            # Rule 5: ordered; no join needed, just learn the version.
            if real:
                tmeta.ver.set(sv_tid, sv_version)
            return
        # Rule 6: concurrent — perform the join.
        clock = tmeta.clock
        if clock.shared:
            clock = clock.clone()
            tmeta.clock = clock
            self.counters.clones += 1
            self.counters.words_allocated += 1 + len(clock)
        clock.join(source_clock)
        tmeta.ver.increment(tid)
        if real:
            tmeta.ver.set(sv_tid, sv_version)

    # -- sampling period boundaries (Table 5) -----------------------------------

    def begin_sampling(self) -> None:
        """Enter a sampling period; increments every thread's clock.

        The increments re-establish *strict* well-formedness (Lemma 5) so
        that clock comparisons imply happens-before inside the period.
        """
        if self.sampling:
            return
        self.sampling = True
        for tid, meta in self._thread.items():
            self._inc(meta, tid)
        obs = self.observer
        if obs is not None:
            obs.on_sampling(True, self._events_seen)

    def end_sampling(self) -> None:
        """Leave a sampling period; time stops advancing."""
        self.sampling = False
        obs = self.observer
        if obs is not None:
            obs.on_sampling(False, self._events_seen)

    # -- synchronization operations ------------------------------------------------

    def acquire(self, tid: int, lock: int) -> None:
        tmeta = self._thread_meta(tid)
        sync = self._lock.get(lock)
        if sync is None:
            self._count_join(fast=True)  # never released: clock is bottom
            return
        self._join_into_thread(tmeta, tid, sync.clock, sync.vepoch)

    def release(self, tid: int, lock: int) -> None:
        tmeta = self._thread_meta(tid)
        sync = self._lock.get(lock)
        if sync is None:
            sync = SyncMeta()
            self._lock[lock] = sync
            self.counters.words_allocated += 2
        self._copy_to_sync(sync, tmeta, tid)
        self._inc(tmeta, tid)

    def fork(self, tid: int, child: int) -> None:
        tmeta = self._thread_meta(tid)
        cmeta = self._thread_meta(child)  # initial state per Equation 7
        self._join_into_thread(cmeta, child, tmeta.clock, tmeta.vepoch(tid))
        self._inc(tmeta, tid)

    def join(self, tid: int, child: int) -> None:
        tmeta = self._thread_meta(tid)
        cmeta = self._thread_meta(child)
        self._join_into_thread(tmeta, tid, cmeta.clock, cmeta.vepoch(child))
        self._inc(cmeta, child)
        cmeta.alive = False
        if self.reclaim_dead_threads:
            # Accordion-style reclamation (§5.1's production note, in its
            # simplest sound form): a joined thread never acts again, and
            # its clock/version vector is never consulted again — the
            # only reader is its (unique) join, which just ran.  Entries
            # *about* the dead thread inside other clocks and read maps
            # survive, so no happens-before information is lost.
            del self._thread[child]

    def vol_read(self, tid: int, vol: int) -> None:
        tmeta = self._thread_meta(tid)
        sync = self._vol.get(vol)
        if sync is None:
            self._count_join(fast=True)  # never written: clock is bottom
            return
        self._join_into_thread(tmeta, tid, sync.clock, sync.vepoch)

    def vol_write(self, tid: int, vol: int) -> None:
        """``C_x <- C_x ⊔ C_t`` (Algorithm 16 as corrected by Table 7).

        If the volatile's clock is subsumed by the thread's (proved by
        version epoch or by comparison), the join degenerates to a copy
        and the volatile keeps a precise version epoch.  Otherwise the
        result mixes several threads' clocks and the version epoch
        becomes ⊤ve.
        """
        tmeta = self._thread_meta(tid)
        sync = self._vol.get(vol)
        if sync is None:
            sync = SyncMeta()
            self._vol[vol] = sync
            self.counters.words_allocated += 2
        ve = sync.vepoch
        subsumes = False
        if ve == VE_BOTTOM:
            subsumes = True
            self._count_join(fast=True)
        elif (
            self.use_versions
            and ve != VE_TOP
            and tmeta.ver.get(ve & TID_MASK) >= (ve >> TID_BITS)
        ):
            subsumes = True  # Table 7 Rule 7: same version epoch
            self._count_join(fast=True)
        else:
            self._count_join(fast=False)
            subsumes = sync.clock.leq(tmeta.clock)  # Rule 8: happens-before
        if subsumes:
            self._copy_to_sync(sync, tmeta, tid)
        else:
            # Rule 9: concurrent writes — join and give up the version epoch.
            clock = sync.clock
            if clock.shared:
                clock = clock.clone()
                sync.clock = clock
                self.counters.clones += 1
                self.counters.words_allocated += 1 + len(clock)
            clock.join(tmeta.clock)
            sync.vepoch = VE_TOP
        self._inc(tmeta, tid)

    # -- batched fast path -----------------------------------------------------------

    def apply_batch(self, batch: EventBatch) -> None:
        """Run-bulked batch loop for PACER's dominant case.

        The paper's whole premise is that at low sampling rates nearly
        every access hits the inlined "no metadata, not sampling" check
        (Algorithms 12/13, first line).  This loop takes that to its
        columnar conclusion: maximal runs of consecutive access events
        are located with a byte-mask scan, and a run that is outside a
        sampling period and touches no variable with live metadata is
        retired *in bulk* — counter arithmetic and a thread-set update,
        with no per-event Python work at all.  Runs that overlap live
        metadata or a sampling period fall back to a per-event loop over
        the scalar typed handlers, as do synchronization actions and
        period boundaries.  No metadata can appear during a bulk run
        (nothing allocates outside sampling without an existing entry),
        so the run-entry probe stays valid for the whole run.
        """
        cls = type(self)
        if (
            cls.method_enter is not Detector.method_enter
            or cls.method_exit is not Detector.method_exit
        ):
            # a subclass hooked the method events; take the generic path
            super().apply_batch(batch)
            return
        if self._arena is not None:
            if self._np_kernel is not None:
                kinds, tids, targets, sites_np, site_list = (
                    batch.to_numpy_columns()
                )
                self._np_kernel(
                    self, kinds, tids, targets, sites_np, site_list,
                    self._events_seen,
                )
                return
            # packed backend: same run-bulking, one folded access kernel
            kinds, tids, targets, sites = batch.to_list_columns()
            pacer_kernel(
                self, kinds, tids, targets, sites, self._events_seen,
            )
            return
        kinds, tids, targets, sites = batch.to_list_columns()
        n = len(kinds)
        kind_bytes = bytes(kinds)
        mask = kind_bytes.translate(_RUN_MASK_TABLE)
        access01 = kind_bytes.translate(_ACCESS01_TABLE)
        find_break = mask.find
        count_kind = mask.count  # runs: byte 0 = read, 1 = write, 3 = no-op
        vars_map = self._vars
        tracked_disjoint = vars_map.keys().isdisjoint
        thread_map = self._thread
        counters = self.counters
        threads = self._threads
        threads_add = threads.add
        races_append = self.races.append
        discard_md = self.discard_metadata
        read = self.read
        write = self.write
        seen0 = self._events_seen
        sampling = self.sampling
        reads_fast = 0
        writes_fast = 0
        reads_slow = 0
        writes_slow = 0
        compress = _compress
        # Note every access event's thread up front in one C pass: set
        # adds are idempotent and nothing observes ``_threads`` mid-batch,
        # so this matches the scalar path's per-event notes exactly.
        threads.update(compress(tids, access01))
        i = 0
        while i < n:
            k = kinds[i]
            if k <= 1 or k >= 10:  # a run starts here; find where it ends
                j = find_break(2, i)
                if j < 0:
                    j = n
                w = count_kind(1, i, j)
                r = count_kind(0, i, j)
                pure = w + r == j - i  # no riding no-op events in the run
                if not sampling and (
                    not vars_map
                    or tracked_disjoint(
                        targets[i:j]
                        if pure
                        else compress(targets[i:j], access01[i:j])
                    )
                ):
                    # Algorithm 12/13 fast path, retired in bulk
                    writes_fast += w
                    reads_fast += r
                    i = j
                    continue
                if sampling:
                    # Sampling period: exactly FASTTRACK; the scalar
                    # handlers do the full Algorithm 7/8 analysis.
                    for idx in range(i, j):
                        k2 = kinds[idx]
                        if k2 > 1:
                            continue  # m_enter / m_exit / alloc: no-ops
                        self._events_seen = seen0 + idx + 1
                        if k2 == 0:
                            read(tids[idx], targets[idx], sites[idx])
                        else:
                            write(tids[idx], targets[idx], sites[idx])
                    i = j
                    continue
                # Non-sampling run over live metadata: Algorithms 12/13
                # inlined — race checks against frozen clocks, then the
                # Table 4 discard rules.
                for idx in range(i, j):
                    k2 = kinds[idx]
                    if k2 > 1:
                        continue  # m_enter / m_exit / alloc: no-ops
                    target = targets[idx]
                    state = vars_map.get(target)
                    if state is None:
                        if k2 == 0:
                            reads_fast += 1
                        else:
                            writes_fast += 1
                        continue
                    tid = tids[idx]
                    site = sites[idx]
                    tmeta = thread_map.get(tid)
                    if tmeta is None:
                        tmeta = self._thread_meta(tid)
                    c = tmeta.clock._c
                    own = c[tid] if tid < len(c) else 0
                    w = state.write
                    r = state.read
                    if k2 == 0:  # rd (Algorithm 12, non-sampling branch)
                        reads_slow += 1
                        if w is not None and w[0] != 0:
                            wt = w[1]
                            if w[0] > (c[wt] if wt < len(c) else 0):
                                races_append(
                                    Race(target, WRITE_READ, wt, w[0],
                                         state.write_site, tid, site,
                                         seen0 + idx, state.write_index)
                                )
                        if r is not None:
                            if r._map is None:
                                # Table 4 Rule 2: discard a read epoch
                                # FASTTRACK would have overwritten.
                                if (r._clock != own or r._tid != tid) and (
                                    r._clock
                                    <= (c[r._tid] if r._tid < len(c) else 0)
                                ):
                                    state.read = None
                            elif r.discard(tid):  # Rule 3: drop t's entry
                                state.read = None
                        if discard_md and state.write is None and state.read is None:
                            del vars_map[target]
                    else:  # wr (Algorithm 13, non-sampling branch)
                        writes_slow += 1
                        if w is not None and w[0] != 0:
                            wt = w[1]
                            if w[0] > (c[wt] if wt < len(c) else 0):
                                races_append(
                                    Race(target, WRITE_WRITE, wt, w[0],
                                         state.write_site, tid, site,
                                         seen0 + idx, state.write_index)
                                )
                        if r is not None:
                            for u, rc, rs, ri in r.racing_entries(tmeta.clock):
                                races_append(
                                    Race(target, READ_WRITE, u, rc, rs,
                                         tid, site, seen0 + idx, ri)
                                )
                        if w is not None and w[0] == own and w[1] == tid:
                            continue  # same epoch: keep sampled metadata
                        state.write = None  # discard write epoch and reads
                        state.read = None
                        if discard_md:
                            del vars_map[target]
                i = j
                continue
            self._events_seen = seen0 + i + 1
            if k == 8:  # period boundaries carry no acting thread
                self.begin_sampling()
                sampling = self.sampling
            elif k == 9:
                self.end_sampling()
                sampling = self.sampling
            else:  # synchronization actions (2 <= k <= 7)
                tid = tids[i]
                target = targets[i]
                threads_add(tid)
                if k == 2:
                    self.acquire(tid, target)
                elif k == 3:
                    self.release(tid, target)
                elif k == 4:
                    threads_add(target)
                    self.fork(tid, target)
                elif k == 5:
                    self.join(tid, target)
                elif k == 6:
                    self.vol_read(tid, target)
                else:  # k == 7
                    self.vol_write(tid, target)
            i += 1
        self._events_seen = seen0 + n
        counters.reads_fast_nonsampling += reads_fast
        counters.writes_fast_nonsampling += writes_fast
        counters.reads_slow_nonsampling += reads_slow
        counters.writes_slow_nonsampling += writes_slow

    # -- reads and writes (Algorithms 12 and 13, Table 4) ---------------------------

    def read(self, tid: int, var: int, site: int = 0) -> None:
        if self._arena is not None:
            pacer_access_packed(self, 0, tid, var, site, self._events_seen - 1)
            return
        state = self._vars.get(var)
        if not self.sampling and state is None:
            self.counters.reads_fast_nonsampling += 1  # inlined fast path
            return
        if self.sampling:
            self.counters.reads_slow_sampling += 1
        else:
            self.counters.reads_slow_nonsampling += 1
        if state is None:
            state = VarState()
            self._vars[var] = state
            self.counters.words_allocated += 2
        tmeta = self._thread_meta(tid)
        clock = tmeta.clock
        own = clock.get(tid)
        r = state.read
        if self.sampling:
            # Sampling period: exactly FASTTRACK (Algorithm 7).
            if r is not None and r.is_epoch and r.epoch == Epoch(own, tid):
                return  # same read epoch: no action
            self._check_write_race(var, state, clock, tid, site, WRITE_READ)
            if r is None:
                state.read = ReadMap(tid, own, site, self.now)
                self.counters.words_allocated += 2
            elif r.is_epoch and r.leq_vc(clock):
                r.set_epoch(tid, own, site, self.now)  # overwrite read map
            else:
                r.record(tid, own, site, self.now)  # update/inflate read map
                self.counters.words_allocated += 2
        else:
            # Non-sampling period (Algorithm 12): the race check always
            # runs — clocks are frozen, so same-epoch shortcuts that are
            # safe under FASTTRACK would silently drop sampled races here.
            self._check_write_race(var, state, clock, tid, site, WRITE_READ)
            if r is not None:
                if r.is_epoch:
                    # Table 4 Rule 2: discard a read epoch FASTTRACK would
                    # have overwritten.  A same-epoch read (Rule 1) is
                    # *not* overwritten by FASTTRACK, and Rule 4 keeps a
                    # concurrent one.
                    if r.epoch != Epoch(own, tid) and r.leq_vc(clock):
                        state.read = None
                elif r.discard(tid):  # Rule 3: drop only t's entry
                    state.read = None
            self._maybe_discard(var, state)

    def write(self, tid: int, var: int, site: int = 0) -> None:
        if self._arena is not None:
            pacer_access_packed(self, 1, tid, var, site, self._events_seen - 1)
            return
        state = self._vars.get(var)
        if not self.sampling and state is None:
            self.counters.writes_fast_nonsampling += 1  # inlined fast path
            return
        if self.sampling:
            self.counters.writes_slow_sampling += 1
        else:
            self.counters.writes_slow_nonsampling += 1
        if state is None:
            state = VarState()
            self._vars[var] = state
            self.counters.words_allocated += 2
        tmeta = self._thread_meta(tid)
        clock = tmeta.clock
        own = clock.get(tid)
        w = state.write
        same_epoch = w is not None and w.clock == own and w.tid == tid
        if self.sampling:
            # Sampling period: exactly FASTTRACK (Algorithm 8).
            if same_epoch:
                return  # same write epoch: no action
            self._check_write_race(var, state, clock, tid, site, WRITE_WRITE)
            self._check_read_races(var, state, clock, tid, site)
            state.write = Epoch(own, tid)
            state.write_site = site
            state.write_index = self.now
            state.read = None
            self.counters.words_allocated += 2
        else:
            # Non-sampling period (Algorithm 13): checks run even on a
            # same-epoch write — with frozen clocks, sampled reads that
            # race this write would otherwise go unreported.
            self._check_write_race(var, state, clock, tid, site, WRITE_WRITE)
            self._check_read_races(var, state, clock, tid, site)
            if same_epoch:
                return  # keep the sampled metadata; nothing to discard
            state.write = None  # discard write epoch and read map
            state.read = None
            self._maybe_discard(var, state)

    def _check_write_race(self, var, state, clock, tid, site, kind) -> None:
        """check W ⪯ C_t; report a race with the prior write otherwise."""
        w = state.write
        if w is not None and not epoch_leq_vc(w, clock):
            self.report(
                var, kind, w.tid, w.clock, state.write_site, tid, site,
                first_index=state.write_index,
            )

    def _check_read_races(self, var, state, clock, tid, site) -> None:
        """check R ⊑ C_t; report read-write races otherwise."""
        r = state.read
        if r is not None:
            for u, c, s, i in r.racing_entries(clock):
                self.report(var, READ_WRITE, u, c, s, tid, site, first_index=i)

    def _maybe_discard(self, var: int, state: VarState) -> None:
        """Drop the variable's metadata entirely once fully null."""
        if self.discard_metadata and state.is_null:
            del self._vars[var]

    # -- accounting ----------------------------------------------------------------

    @property
    def tracked_variables(self) -> int:
        """Number of variables with live metadata (space proxy)."""
        if self._arena is not None:
            return len(self._arena)
        return len(self._vars)

    def var_view(self, var: int) -> Optional[VarState]:
        """``var``'s metadata as a :class:`VarState` on either backend.

        Introspection for tests and tools; on the packed backend the view
        is a reconstruction and does not write back to the arena.
        """
        if self._arena is not None:
            return self._arena.view(var)
        return self._vars.get(var)

    def max_clock_entries(self) -> int:
        """Largest live vector clock across threads and sync objects."""
        best = 0
        for meta in self._thread.values():
            if len(meta.clock) > best:
                best = len(meta.clock)
        for table in (self._lock, self._vol):
            for sync in table.values():
                if len(sync.clock) > best:
                    best = len(sync.clock)
        return best

    def footprint_words(self) -> int:
        """Live metadata footprint; shared clocks are counted once."""
        if self._arena is not None:
            var_words = self._arena.words()
        else:
            var_words = sum(state.words() for state in self._vars.values())
        return footprint_words(
            var_words,
            chain(
                (meta.clock for meta in self._thread.values()),
                (sync.clock for sync in self._lock.values()),
                (sync.clock for sync in self._vol.values()),
            ),
            versions=(meta.ver for meta in self._thread.values()),
            # vepoch word + pointer per sync object
            sync_overhead=2 * (len(self._lock) + len(self._vol)),
        )
