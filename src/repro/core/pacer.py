"""The PACER detector (paper §3, Algorithms 9-13 and 16, Tables 4-7).

PACER divides execution into global *sampling* and *non-sampling*
periods.  While sampling it is exactly FASTTRACK.  While not sampling it

* performs **no work and allocates no space** for accesses to variables
  with no live metadata (the inlined fast path),
* **discards** read/write metadata that FASTTRACK would have replaced or
  discarded — once a sampled access can no longer be the *last* access to
  race with a future access, it is dropped,
* stops incrementing thread clocks (non-sampling periods are
  *timeless*), and detects the resulting redundant communication with
  **version epochs** (skip joins in O(1)) and **shared clocks** (shallow
  copies at lock releases), eliminating nearly all O(n) work.

The guarantee: a race whose first access falls inside a sampling period
(and is the last access racing with the second) is always reported, so
each dynamic race is detected with probability equal to the sampling
rate.

Deviations from the paper's pseudocode (all justified by its own formal
semantics in Table 7) are listed in DESIGN.md under "errata".

Feature flags (``use_versions``, ``use_sharing``, ``discard_metadata``)
exist for the ablation benchmarks and default to the paper's behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..detectors.base import Detector, READ_WRITE, WRITE_READ, WRITE_WRITE
from .clocks import Epoch, ReadMap, epoch_leq_vc
from .metadata import SyncMeta, ThreadMeta, VarState
from .versioning import BOTTOM_VE, SharableClock, TOP_VE, VersionEpoch

__all__ = ["PacerDetector"]


class PacerDetector(Detector):
    """Sampling race detector with proportional detection and overhead."""

    name = "pacer"

    def __init__(
        self,
        sampling: bool = False,
        use_versions: bool = True,
        use_sharing: bool = True,
        discard_metadata: bool = True,
        reclaim_dead_threads: bool = False,
    ) -> None:
        super().__init__()
        self.sampling = sampling
        self.use_versions = use_versions
        self.use_sharing = use_sharing
        self.discard_metadata = discard_metadata
        self.reclaim_dead_threads = reclaim_dead_threads
        self._thread: Dict[int, ThreadMeta] = {}
        self._lock: Dict[int, SyncMeta] = {}
        self._vol: Dict[int, SyncMeta] = {}
        self._vars: Dict[int, VarState] = {}

    # -- metadata helpers ---------------------------------------------------

    def _thread_meta(self, tid: int) -> ThreadMeta:
        meta = self._thread.get(tid)
        if meta is None:
            meta = ThreadMeta(tid)
            self._thread[tid] = meta
            self.counters.words_allocated += 4
        return meta

    # -- low-level clock operations (Algorithms 9, 10, 11) ---------------------

    def _inc(self, meta: ThreadMeta, tid: int) -> None:
        """Vector clock increment (Algorithm 10): no-op unless sampling."""
        if not self.sampling:
            return
        clock = meta.clock
        if clock.shared:
            clock = clock.clone()
            meta.clock = clock
            self.counters.clones += 1
            self.counters.words_allocated += 1 + len(clock)
        clock.increment(tid)
        meta.ver.increment(tid)
        self.counters.increments += 1

    def _copy_to_sync(self, sync: SyncMeta, tmeta: ThreadMeta, tid: int) -> None:
        """Vector clock copy ``C_o <- C_t`` (Algorithm 9)."""
        if not self.sampling and self.use_sharing:
            tmeta.clock.shared = True
            sync.clock = tmeta.clock  # shallow: share the vector clock
            self.counters.copies_shallow_nonsampling += 1
        else:
            sync.clock = tmeta.clock.clone()  # deep element-by-element copy
            if self.sampling:
                self.counters.copies_deep_sampling += 1
            else:
                self.counters.copies_deep_nonsampling += 1
            self.counters.words_allocated += 1 + len(sync.clock)
        sync.vepoch = tmeta.vepoch(tid)

    def _count_join(self, fast: bool) -> None:
        c = self.counters
        if fast:
            if self.sampling:
                c.joins_fast_sampling += 1
            else:
                c.joins_fast_nonsampling += 1
        else:
            if self.sampling:
                c.joins_slow_sampling += 1
            else:
                c.joins_slow_nonsampling += 1

    def _join_into_thread(
        self,
        tmeta: ThreadMeta,
        tid: int,
        source_clock: Optional[SharableClock],
        source_vepoch: VersionEpoch,
    ) -> None:
        """Vector clock join ``C_t <- C_t ⊔ C_o`` (Algorithm 11 / Table 7).

        Rule 4 (version fast path): already received this version — O(1).
        Rule 5 (happens-before): clocks ordered; record the version only.
        Rule 6 (concurrent): real join; clone first if shared.
        """
        if source_clock is None or source_vepoch is BOTTOM_VE:
            # The source clock is the bottom clock; a join is a no-op.
            self._count_join(fast=True)
            return
        real = source_vepoch is not TOP_VE
        if (
            self.use_versions
            and real
            and tmeta.ver.get(source_vepoch.tid) >= source_vepoch.version
        ):
            self._count_join(fast=True)  # Rule 4: same version epoch
            return
        self._count_join(fast=False)
        if source_clock.leq(tmeta.clock):
            # Rule 5: ordered; no join needed, just learn the version.
            if real:
                tmeta.ver.set(source_vepoch.tid, source_vepoch.version)
            return
        # Rule 6: concurrent — perform the join.
        clock = tmeta.clock
        if clock.shared:
            clock = clock.clone()
            tmeta.clock = clock
            self.counters.clones += 1
            self.counters.words_allocated += 1 + len(clock)
        clock.join(source_clock)
        tmeta.ver.increment(tid)
        if real:
            tmeta.ver.set(source_vepoch.tid, source_vepoch.version)

    # -- sampling period boundaries (Table 5) -----------------------------------

    def begin_sampling(self) -> None:
        """Enter a sampling period; increments every thread's clock.

        The increments re-establish *strict* well-formedness (Lemma 5) so
        that clock comparisons imply happens-before inside the period.
        """
        if self.sampling:
            return
        self.sampling = True
        for tid, meta in self._thread.items():
            self._inc(meta, tid)

    def end_sampling(self) -> None:
        """Leave a sampling period; time stops advancing."""
        self.sampling = False

    # -- synchronization operations ------------------------------------------------

    def acquire(self, tid: int, lock: int) -> None:
        tmeta = self._thread_meta(tid)
        sync = self._lock.get(lock)
        if sync is None:
            self._count_join(fast=True)  # never released: clock is bottom
            return
        self._join_into_thread(tmeta, tid, sync.clock, sync.vepoch)

    def release(self, tid: int, lock: int) -> None:
        tmeta = self._thread_meta(tid)
        sync = self._lock.get(lock)
        if sync is None:
            sync = SyncMeta()
            self._lock[lock] = sync
            self.counters.words_allocated += 2
        self._copy_to_sync(sync, tmeta, tid)
        self._inc(tmeta, tid)

    def fork(self, tid: int, child: int) -> None:
        tmeta = self._thread_meta(tid)
        cmeta = self._thread_meta(child)  # initial state per Equation 7
        self._join_into_thread(cmeta, child, tmeta.clock, tmeta.vepoch(tid))
        self._inc(tmeta, tid)

    def join(self, tid: int, child: int) -> None:
        tmeta = self._thread_meta(tid)
        cmeta = self._thread_meta(child)
        self._join_into_thread(tmeta, tid, cmeta.clock, cmeta.vepoch(child))
        self._inc(cmeta, child)
        cmeta.alive = False
        if self.reclaim_dead_threads:
            # Accordion-style reclamation (§5.1's production note, in its
            # simplest sound form): a joined thread never acts again, and
            # its clock/version vector is never consulted again — the
            # only reader is its (unique) join, which just ran.  Entries
            # *about* the dead thread inside other clocks and read maps
            # survive, so no happens-before information is lost.
            del self._thread[child]

    def vol_read(self, tid: int, vol: int) -> None:
        tmeta = self._thread_meta(tid)
        sync = self._vol.get(vol)
        if sync is None:
            self._count_join(fast=True)  # never written: clock is bottom
            return
        self._join_into_thread(tmeta, tid, sync.clock, sync.vepoch)

    def vol_write(self, tid: int, vol: int) -> None:
        """``C_x <- C_x ⊔ C_t`` (Algorithm 16 as corrected by Table 7).

        If the volatile's clock is subsumed by the thread's (proved by
        version epoch or by comparison), the join degenerates to a copy
        and the volatile keeps a precise version epoch.  Otherwise the
        result mixes several threads' clocks and the version epoch
        becomes ⊤ve.
        """
        tmeta = self._thread_meta(tid)
        sync = self._vol.get(vol)
        if sync is None:
            sync = SyncMeta()
            self._vol[vol] = sync
            self.counters.words_allocated += 2
        ve = sync.vepoch
        subsumes = False
        if ve is BOTTOM_VE:
            subsumes = True
            self._count_join(fast=True)
        elif (
            self.use_versions
            and ve is not TOP_VE
            and tmeta.ver.get(ve.tid) >= ve.version
        ):
            subsumes = True  # Table 7 Rule 7: same version epoch
            self._count_join(fast=True)
        else:
            self._count_join(fast=False)
            subsumes = sync.clock.leq(tmeta.clock)  # Rule 8: happens-before
        if subsumes:
            self._copy_to_sync(sync, tmeta, tid)
        else:
            # Rule 9: concurrent writes — join and give up the version epoch.
            clock = sync.clock
            if clock.shared:
                clock = clock.clone()
                sync.clock = clock
                self.counters.clones += 1
                self.counters.words_allocated += 1 + len(clock)
            clock.join(tmeta.clock)
            sync.vepoch = TOP_VE
        self._inc(tmeta, tid)

    # -- reads and writes (Algorithms 12 and 13, Table 4) ---------------------------

    def read(self, tid: int, var: int, site: int = 0) -> None:
        state = self._vars.get(var)
        if not self.sampling and state is None:
            self.counters.reads_fast_nonsampling += 1  # inlined fast path
            return
        if self.sampling:
            self.counters.reads_slow_sampling += 1
        else:
            self.counters.reads_slow_nonsampling += 1
        if state is None:
            state = VarState()
            self._vars[var] = state
            self.counters.words_allocated += 2
        tmeta = self._thread_meta(tid)
        clock = tmeta.clock
        own = clock.get(tid)
        r = state.read
        if self.sampling:
            # Sampling period: exactly FASTTRACK (Algorithm 7).
            if r is not None and r.is_epoch and r.epoch == Epoch(own, tid):
                return  # same read epoch: no action
            self._check_write_race(var, state, clock, tid, site, WRITE_READ)
            if r is None:
                state.read = ReadMap(tid, own, site, self.now)
                self.counters.words_allocated += 2
            elif r.is_epoch and r.leq_vc(clock):
                r.set_epoch(tid, own, site, self.now)  # overwrite read map
            else:
                r.record(tid, own, site, self.now)  # update/inflate read map
                self.counters.words_allocated += 2
        else:
            # Non-sampling period (Algorithm 12): the race check always
            # runs — clocks are frozen, so same-epoch shortcuts that are
            # safe under FASTTRACK would silently drop sampled races here.
            self._check_write_race(var, state, clock, tid, site, WRITE_READ)
            if r is not None:
                if r.is_epoch:
                    # Table 4 Rule 2: discard a read epoch FASTTRACK would
                    # have overwritten.  A same-epoch read (Rule 1) is
                    # *not* overwritten by FASTTRACK, and Rule 4 keeps a
                    # concurrent one.
                    if r.epoch != Epoch(own, tid) and r.leq_vc(clock):
                        state.read = None
                elif r.discard(tid):  # Rule 3: drop only t's entry
                    state.read = None
            self._maybe_discard(var, state)

    def write(self, tid: int, var: int, site: int = 0) -> None:
        state = self._vars.get(var)
        if not self.sampling and state is None:
            self.counters.writes_fast_nonsampling += 1  # inlined fast path
            return
        if self.sampling:
            self.counters.writes_slow_sampling += 1
        else:
            self.counters.writes_slow_nonsampling += 1
        if state is None:
            state = VarState()
            self._vars[var] = state
            self.counters.words_allocated += 2
        tmeta = self._thread_meta(tid)
        clock = tmeta.clock
        own = clock.get(tid)
        w = state.write
        same_epoch = w is not None and w.clock == own and w.tid == tid
        if self.sampling:
            # Sampling period: exactly FASTTRACK (Algorithm 8).
            if same_epoch:
                return  # same write epoch: no action
            self._check_write_race(var, state, clock, tid, site, WRITE_WRITE)
            self._check_read_races(var, state, clock, tid, site)
            state.write = Epoch(own, tid)
            state.write_site = site
            state.write_index = self.now
            state.read = None
            self.counters.words_allocated += 2
        else:
            # Non-sampling period (Algorithm 13): checks run even on a
            # same-epoch write — with frozen clocks, sampled reads that
            # race this write would otherwise go unreported.
            self._check_write_race(var, state, clock, tid, site, WRITE_WRITE)
            self._check_read_races(var, state, clock, tid, site)
            if same_epoch:
                return  # keep the sampled metadata; nothing to discard
            state.write = None  # discard write epoch and read map
            state.read = None
            self._maybe_discard(var, state)

    def _check_write_race(self, var, state, clock, tid, site, kind) -> None:
        """check W ⪯ C_t; report a race with the prior write otherwise."""
        w = state.write
        if w is not None and not epoch_leq_vc(w, clock):
            self.report(
                var, kind, w.tid, w.clock, state.write_site, tid, site,
                first_index=state.write_index,
            )

    def _check_read_races(self, var, state, clock, tid, site) -> None:
        """check R ⊑ C_t; report read-write races otherwise."""
        r = state.read
        if r is not None:
            for u, c, s, i in r.racing_entries(clock):
                self.report(var, READ_WRITE, u, c, s, tid, site, first_index=i)

    def _maybe_discard(self, var: int, state: VarState) -> None:
        """Drop the variable's metadata entirely once fully null."""
        if self.discard_metadata and state.is_null:
            del self._vars[var]

    # -- accounting ----------------------------------------------------------------

    @property
    def tracked_variables(self) -> int:
        """Number of variables with live metadata (space proxy)."""
        return len(self._vars)

    def footprint_words(self) -> int:
        """Live metadata footprint; shared clocks are counted once."""
        total = 0
        for state in self._vars.values():
            total += state.words()
        seen = set()
        for meta in self._thread.values():
            if id(meta.clock) not in seen:
                seen.add(id(meta.clock))
                total += 1 + len(meta.clock)
            total += 1 + len(meta.ver)
        for table in (self._lock, self._vol):
            for sync in table.values():
                total += 2  # vepoch word + pointer
                if id(sync.clock) not in seen:
                    seen.add(id(sync.clock))
                    total += 1 + len(sync.clock)
        return total
