"""Vector clocks, epochs, and read maps.

These are the basic happens-before bookkeeping structures shared by every
detector in this package (GENERIC, Djit+, FASTTRACK, PACER).

Terminology follows the paper:

* A *vector clock* ``C`` maps thread ids to logical clock values; clocks
  are compared pointwise (``C1 <= C2`` iff every component of ``C1`` is
  less than or equal to the corresponding component of ``C2``).
* An *epoch* ``c@t`` records a single clock value ``c`` for a single
  thread ``t``.  Epoch-vs-clock comparison (``c@t "⪯" C`` iff
  ``c <= C[t]``) is constant time, which is FASTTRACK's key optimization.
* A *read map* maps zero or more threads to clock values.  FASTTRACK and
  PACER use an epoch while reads are totally ordered and inflate to a
  full map only for concurrent reads.

Thread ids are small non-negative integers assigned densely; clocks grow
on demand, so creating a clock does not require knowing the final number
of threads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = [
    "VectorClock",
    "Epoch",
    "MIN_EPOCH",
    "epoch_leq_vc",
    "ReadMap",
    "TID_BITS",
    "TID_MASK",
    "MAX_TID",
    "PACKED_MIN",
    "pack_epoch",
    "unpack_epoch",
]


class Epoch(NamedTuple):
    """An epoch ``c@t``: clock value ``c`` of thread ``t``.

    ``Epoch(0, t)`` for any ``t`` is a *minimal* epoch, equivalent to the
    paper's ⊥e; it happens before everything.
    """

    clock: int
    tid: int

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{self.clock}@{self.tid}"

    @property
    def is_minimal(self) -> bool:
        """True for any epoch of the form ``0@t`` (the paper's ⊥e)."""
        return self.clock == 0


#: The canonical minimal epoch 0@0 (the paper's ⊥e).
MIN_EPOCH = Epoch(0, 0)


# -- packed epochs -----------------------------------------------------------
#
# The packed state backend stores an epoch ``c@t`` as the single integer
# ``(c << TID_BITS) | t`` so the hot-path comparisons of Tables 4-7 become
# plain integer ops with no tuple allocation.  ``0`` is the packed ⊥e:
# every live thread clock is >= 1 from its first event (Equation 7 applies
# ``inc_t`` to the bottom clock before any access), so a real packed epoch
# is always >= ``PACKED_MIN`` and never collides with the sentinel.

#: Bits reserved for the thread id in a packed epoch.  2^20 threads is far
#: beyond any workload here; clocks get the (unbounded) remaining bits.
TID_BITS = 20

#: Mask selecting the tid field of a packed epoch.
TID_MASK = (1 << TID_BITS) - 1

#: Largest thread id a packed epoch can carry.
MAX_TID = TID_MASK

#: Smallest packed value of a real (non-⊥e) epoch: 1 @ tid 0.
PACKED_MIN = 1 << TID_BITS


def pack_epoch(clock: int, tid: int) -> int:
    """Pack ``clock @ tid`` into one int ``(clock << TID_BITS) | tid``.

    ``clock`` must be positive — packed 0 is reserved for ⊥e — and ``tid``
    must fit in :data:`TID_BITS`; anything else raises ``ValueError``.
    """
    if not 0 <= tid <= MAX_TID:
        raise ValueError(f"tid {tid} outside [0, {MAX_TID}]")
    if clock <= 0:
        raise ValueError(f"clock {clock} must be >= 1 (0 is the packed ⊥e)")
    return (clock << TID_BITS) | tid


def unpack_epoch(packed: int) -> Epoch:
    """Inverse of :func:`pack_epoch`; packed 0 unpacks to the ⊥e 0@0."""
    if packed == 0:
        return MIN_EPOCH
    return Epoch(packed >> TID_BITS, packed & TID_MASK)


class VectorClock:
    """A grow-on-demand vector clock.

    Components default to 0, so clocks over different thread universes
    compare correctly.  All mutating operations are in place; use
    :meth:`copy` for a deep copy.
    """

    __slots__ = ("_c",)

    def __init__(self, values: Optional[List[int]] = None) -> None:
        self._c: List[int] = list(values) if values else []

    # -- accessors -----------------------------------------------------

    def get(self, tid: int) -> int:
        """Return the clock component for ``tid`` (0 if never set)."""
        c = self._c
        return c[tid] if tid < len(c) else 0

    __getitem__ = get

    def set(self, tid: int, value: int) -> None:
        """Set the clock component for ``tid``, growing as needed."""
        c = self._c
        if tid >= len(c):
            c.extend([0] * (tid + 1 - len(c)))
        c[tid] = value

    __setitem__ = set

    def increment(self, tid: int) -> None:
        """Advance ``tid``'s component by one (logical time passes)."""
        self.set(tid, self.get(tid) + 1)

    def __len__(self) -> int:
        """Number of stored components (trailing zeros may be absent)."""
        return len(self._c)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(tid, clock)`` pairs for nonzero components."""
        for tid, value in enumerate(self._c):
            if value:
                yield tid, value

    # -- lattice operations ---------------------------------------------

    def copy(self) -> "VectorClock":
        """Return an independent deep copy."""
        return VectorClock(self._c)

    def join(self, other: "VectorClock") -> None:
        """In-place pointwise maximum: ``self <- self ⊔ other``."""
        mine, theirs = self._c, other._c
        if mine == theirs:
            return
        lt = len(theirs)
        if lt > len(mine):
            mine.extend([0] * (lt - len(mine)))
        mine[:lt] = [m if m >= t else t for m, t in zip(mine, theirs)]

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise comparison ``self ⊑ other``."""
        mine, theirs = self._c, other._c
        n = len(theirs)
        for i, value in enumerate(mine):
            if value and (i >= n or value > theirs[i]):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.leq(other) and other.leq(self)

    def __hash__(self) -> int:  # pragma: no cover - clocks are mutable
        raise TypeError("VectorClock is mutable and unhashable")

    def epoch_of(self, tid: int) -> Epoch:
        """The current epoch ``C[t]@t`` of thread ``tid``."""
        return Epoch(self.get(tid), tid)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{t}:{c}" for t, c in self.items())
        return f"VC({inner})"


def epoch_leq_vc(e: Optional[Epoch], clock: VectorClock) -> bool:
    """The constant-time relation ``c@t ⪯ C`` (Equation 4).

    ``None`` stands for the minimal epoch ⊥e and satisfies the relation
    vacuously.
    """
    if e is None or e.clock == 0:
        return True
    return e.clock <= clock.get(e.tid)


class ReadMap:
    """The last-reader bookkeeping for one variable (paper §2.2).

    A read map is conceptually a partial map ``t -> c`` with an attached
    access *site* per entry (used for race reports).  It has two
    representations:

    * **epoch**: exactly one entry, stored flat — the common case when
      reads are totally ordered;
    * **shared**: a dict of concurrent readers.

    An *empty* read map is represented by the detector as ``None`` rather
    than an empty ``ReadMap`` (PACER relies on ``null`` metadata for its
    fast paths), so this class always holds at least one entry.
    """

    __slots__ = ("_tid", "_clock", "_site", "_index", "_map")

    def __init__(self, tid: int, clock: int, site: int = 0, index: int = -1) -> None:
        self._tid = tid
        self._clock = clock
        self._site = site
        self._index = index
        self._map: Optional[Dict[int, Tuple[int, int, int]]] = None

    # -- representation queries ------------------------------------------

    @property
    def is_epoch(self) -> bool:
        """True while the map holds a single totally-ordered reader."""
        return self._map is None

    def __len__(self) -> int:
        return 1 if self._map is None else len(self._map)

    @property
    def epoch(self) -> Epoch:
        """The single entry as an epoch; only valid when :attr:`is_epoch`."""
        if self._map is not None:
            raise ValueError("read map is shared; no single epoch")
        return Epoch(self._clock, self._tid)

    @property
    def site(self) -> int:
        """Site of the single entry; only valid when :attr:`is_epoch`."""
        if self._map is not None:
            raise ValueError("read map is shared; use entries()")
        return self._site

    def entries(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate ``(tid, clock, site, index)`` for every recorded reader."""
        if self._map is None:
            yield (self._tid, self._clock, self._site, self._index)
        else:
            for tid, (clock, site, index) in self._map.items():
                yield (tid, clock, site, index)

    def get(self, tid: int) -> int:
        """Clock recorded for ``tid`` (0 if absent)."""
        if self._map is None:
            return self._clock if tid == self._tid else 0
        entry = self._map.get(tid)
        return entry[0] if entry else 0

    # -- updates ---------------------------------------------------------

    def set_epoch(self, tid: int, clock: int, site: int = 0, index: int = -1) -> None:
        """Collapse to a single-entry epoch ``clock@tid``."""
        self._tid, self._clock, self._site, self._index = tid, clock, site, index
        self._map = None

    def record(self, tid: int, clock: int, site: int = 0, index: int = -1) -> None:
        """Add/overwrite ``tid``'s entry, inflating to a dict if needed."""
        if self._map is None:
            if tid == self._tid:
                self._clock, self._site, self._index = clock, site, index
                return
            self._map = {self._tid: (self._clock, self._site, self._index)}
        self._map[tid] = (clock, site, index)

    def discard(self, tid: int) -> bool:
        """Remove ``tid``'s entry if present.

        Returns True if the map became empty (the caller should then
        replace it with ``None``).  Used by PACER's non-sampling read rule
        (Table 4, Rules 2–3): a read FASTTRACK would have overwritten is
        discarded instead.

        A shared map is *not* collapsed back to the epoch representation
        when one entry remains: FASTTRACK never deflates a read map, and
        treating a leftover entry as an "exclusive" epoch would let a
        later ordered read discard another thread's sampled read
        (Rule 2), losing a guaranteed report.
        """
        if self._map is None:
            return tid == self._tid
        self._map.pop(tid, None)
        return not self._map

    # -- comparisons -------------------------------------------------------

    def leq_vc(self, clock: VectorClock) -> bool:
        """``R ⊑ C``: every recorded read happens before ``clock``."""
        if self._map is None:
            return self._clock <= clock.get(self._tid)
        return all(c <= clock.get(t) for t, (c, _s, _i) in self._map.items())

    def racing_entries(self, clock: VectorClock) -> List[Tuple[int, int, int, int]]:
        """Entries ``(tid, clock, site, index)`` *not* ordered before ``clock``.

        These are the prior reads that race with a write at ``clock``.
        """
        return [
            (t, c, s, i) for t, c, s, i in self.entries() if c > clock.get(t)
        ]

    def words(self) -> int:
        """Approximate metadata footprint in words (for Figure 10)."""
        if self._map is None:
            return 2  # packed epoch word + site word
        return 2 + 2 * len(self._map)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{t}:{c}" for t, c, _s, _i in self.entries())
        return f"ReadMap({inner})"
