"""Operation and allocation counters (reproduces Table 3's columns).

Every detector owns an :class:`OpCounters`; PACER additionally splits
counts by sampling vs non-sampling period.  The counters also drive:

* the simulator's allocation model (metadata allocation during sampling
  shortens GC periods — the sampling-bias source of Table 1), and
* the analysis *cost model* used alongside real timings for Figures 7–9.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["OpCounters", "CostModel", "PerfCounters", "CoreStats"]


@dataclass
class OpCounters:
    """Counts of analysis operations, split by period and cost class.

    "Slow" joins/comparisons are O(n) in the number of threads; "fast"
    joins were skipped via the version fast path in O(1).  Deep copies are
    O(n) element-by-element copies; shallow copies share the clock in
    O(1).  For reads and writes, the *fast path* is the inlined
    instrumentation check that does nothing (non-sampling and no
    metadata); everything else is a *slow path* call.
    """

    # vector clock joins (thread <- lock/volatile/thread)
    joins_slow_sampling: int = 0
    joins_fast_sampling: int = 0
    joins_slow_nonsampling: int = 0
    joins_fast_nonsampling: int = 0

    # vector clock copies (lock/volatile <- thread)
    copies_deep_sampling: int = 0
    copies_shallow_sampling: int = 0
    copies_deep_nonsampling: int = 0
    copies_shallow_nonsampling: int = 0

    # read instrumentation
    reads_slow_sampling: int = 0
    reads_slow_nonsampling: int = 0
    reads_fast_nonsampling: int = 0
    reads_fast_sampling: int = 0

    # write instrumentation
    writes_slow_sampling: int = 0
    writes_slow_nonsampling: int = 0
    writes_fast_nonsampling: int = 0
    writes_fast_sampling: int = 0

    # clock machinery
    clones: int = 0
    increments: int = 0

    # metadata allocation, in words (drives the GC/bias model)
    words_allocated: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Return a plain dict of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {k: now[k] - earlier.get(k, 0) for k in now}

    # Convenience aggregates -------------------------------------------------

    @property
    def joins_slow(self) -> int:
        return self.joins_slow_sampling + self.joins_slow_nonsampling

    @property
    def joins_fast(self) -> int:
        return self.joins_fast_sampling + self.joins_fast_nonsampling

    @property
    def reads(self) -> int:
        return (
            self.reads_slow_sampling
            + self.reads_slow_nonsampling
            + self.reads_fast_nonsampling
            + self.reads_fast_sampling
        )

    @property
    def writes(self) -> int:
        return (
            self.writes_slow_sampling
            + self.writes_slow_nonsampling
            + self.writes_fast_nonsampling
            + self.writes_fast_sampling
        )


@dataclass
class PerfCounters:
    """Wall-clock throughput counters for one analysis run.

    Filled in by :meth:`Detector.run` / :meth:`Detector.run_batch` (and
    by the parallel experiment runner), so speedups are *observed*, not
    asserted: the CLI and benchmarks print events/sec and ns/event
    straight from these.
    """

    events: int = 0
    elapsed_ns: int = 0
    batches: int = 0
    max_batch: int = 0

    @property
    def events_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.events * 1e9 / self.elapsed_ns

    @property
    def ns_per_event(self) -> float:
        if self.events <= 0:
            return 0.0
        return self.elapsed_ns / self.events

    @property
    def mean_batch(self) -> float:
        if self.batches <= 0:
            return 0.0
        return self.events / self.batches

    def merge(self, other: "PerfCounters") -> None:
        """Accumulate another run's counters in place."""
        self.events += other.events
        self.elapsed_ns += other.elapsed_ns
        self.batches += other.batches
        self.max_batch = max(self.max_batch, other.max_batch)

    def summary(self) -> str:
        """One-line human summary (CLI output)."""
        parts = [
            f"{self.events} events in {self.elapsed_ns / 1e6:.1f} ms",
            f"{self.events_per_sec:,.0f} events/s",
            f"{self.ns_per_event:.0f} ns/event",
        ]
        if self.batches:
            parts.append(
                f"{self.batches} batches (mean {self.mean_batch:.0f}, "
                f"max {self.max_batch})"
            )
        return ", ".join(parts)


@dataclass
class CoreStats:
    """The deterministic result core of one (or several merged) trials.

    This is what the sharded experiment runner ships between processes:
    everything a caller needs to aggregate or compare runs, with the
    detector's live object graph left behind in the worker.  Equality
    deliberately ignores wall-clock perf (``compare=False``) so that the
    same seeds produce *equal* :class:`CoreStats` regardless of how many
    jobs or shards computed them — the determinism regression tests rely
    on this.
    """

    workload: str
    detector: str
    rate: Optional[float]
    seed: int
    events: int
    races: int
    #: full dynamic race signatures, ordered by report time
    race_sigs: Tuple[Tuple, ...]
    #: static (first_site, second_site) identities, sorted
    distinct_keys: Tuple[Tuple[int, int], ...]
    effective_rate: float
    counters: Dict[str, int]
    perf: PerfCounters = field(default_factory=PerfCounters, compare=False)
    #: deterministic observability metrics (repro.obs): GC counts,
    #: context switches, final footprints, ...  Excluded from equality
    #: like ``perf`` (older pickles/tests omit it), but byte-identical
    #: across job counts by construction — the obs tests pin that.
    metrics: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def distinct_races(self) -> int:
        return len(self.distinct_keys)

    @classmethod
    def merge(cls, stats: Sequence["CoreStats"]) -> "CoreStats":
        """Aggregate several trials into one summary record.

        Counters sum, dynamic race signatures concatenate (in input
        order), distinct keys union, effective rates average, and perf
        counters accumulate.  Labels collapse to the common value or
        ``"*"`` when mixed.
        """
        if not stats:
            raise ValueError("cannot merge zero CoreStats")

        def common(values: Iterable) -> str:
            unique = {str(v) for v in values}
            return unique.pop() if len(unique) == 1 else "*"

        from ..obs.metrics import merge_metric_dicts

        counters: Dict[str, int] = {}
        sigs: List[Tuple] = []
        keys = set()
        perf = PerfCounters()
        for s in stats:
            for name, value in s.counters.items():
                counters[name] = counters.get(name, 0) + value
            sigs.extend(s.race_sigs)
            keys.update(s.distinct_keys)
            perf.merge(s.perf)
        metrics = merge_metric_dicts(s.metrics for s in stats)
        rates = {s.rate for s in stats}
        return cls(
            workload=common(s.workload for s in stats),
            detector=common(s.detector for s in stats),
            rate=rates.pop() if len(rates) == 1 else None,
            seed=-1,
            events=sum(s.events for s in stats),
            races=sum(s.races for s in stats),
            race_sigs=tuple(sigs),
            distinct_keys=tuple(sorted(keys)),
            effective_rate=sum(s.effective_rate for s in stats) / len(stats),
            counters=counters,
            perf=perf,
            metrics=metrics,
        )


@dataclass
class CostModel:
    """Abstract cost accounting for Figures 7–9.

    Wall-clock overhead in the paper depends on JIT/hardware specifics we
    cannot reproduce; the *shape* claim (overhead proportional to r) is a
    statement about how many operations of each cost class execute.  This
    model assigns unit costs and evaluates a detector's total analysis
    cost from its :class:`OpCounters`.

    Default weights are calibrated so that the r=0 configuration lands
    near the paper's ~33% overhead and r=100% near 12x on the bundled
    workloads; they can be overridden for sensitivity studies.
    """

    fast_path: float = 0.18  # inlined check, paper reports ~18%
    slow_path: float = 6.0  # out-of-line metadata analysis, O(1)
    join_fast: float = 1.0  # version-epoch comparison
    copy_shallow: float = 1.0
    clone_or_deep: float = 4.0  # per-thread component cost added below
    per_thread: float = 0.6  # cost per vector element for O(n) ops

    def cost(self, counters: OpCounters, n_threads: int) -> float:
        """Total modeled analysis cost in arbitrary work units."""
        on = self.clone_or_deep + self.per_thread * max(1, n_threads)
        return (
            self.fast_path
            * (
                counters.reads_fast_nonsampling
                + counters.reads_fast_sampling
                + counters.writes_fast_nonsampling
                + counters.writes_fast_sampling
            )
            + self.slow_path
            * (
                counters.reads_slow_sampling
                + counters.reads_slow_nonsampling
                + counters.writes_slow_sampling
                + counters.writes_slow_nonsampling
            )
            + self.join_fast * counters.joins_fast
            + self.copy_shallow
            * (counters.copies_shallow_sampling + counters.copies_shallow_nonsampling)
            + on
            * (
                counters.joins_slow
                + counters.copies_deep_sampling
                + counters.copies_deep_nonsampling
                + counters.clones
            )
        )
