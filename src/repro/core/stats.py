"""Operation and allocation counters (reproduces Table 3's columns).

Every detector owns an :class:`OpCounters`; PACER additionally splits
counts by sampling vs non-sampling period.  The counters also drive:

* the simulator's allocation model (metadata allocation during sampling
  shortens GC periods — the sampling-bias source of Table 1), and
* the analysis *cost model* used alongside real timings for Figures 7–9.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["OpCounters", "CostModel"]


@dataclass
class OpCounters:
    """Counts of analysis operations, split by period and cost class.

    "Slow" joins/comparisons are O(n) in the number of threads; "fast"
    joins were skipped via the version fast path in O(1).  Deep copies are
    O(n) element-by-element copies; shallow copies share the clock in
    O(1).  For reads and writes, the *fast path* is the inlined
    instrumentation check that does nothing (non-sampling and no
    metadata); everything else is a *slow path* call.
    """

    # vector clock joins (thread <- lock/volatile/thread)
    joins_slow_sampling: int = 0
    joins_fast_sampling: int = 0
    joins_slow_nonsampling: int = 0
    joins_fast_nonsampling: int = 0

    # vector clock copies (lock/volatile <- thread)
    copies_deep_sampling: int = 0
    copies_shallow_sampling: int = 0
    copies_deep_nonsampling: int = 0
    copies_shallow_nonsampling: int = 0

    # read instrumentation
    reads_slow_sampling: int = 0
    reads_slow_nonsampling: int = 0
    reads_fast_nonsampling: int = 0
    reads_fast_sampling: int = 0

    # write instrumentation
    writes_slow_sampling: int = 0
    writes_slow_nonsampling: int = 0
    writes_fast_nonsampling: int = 0
    writes_fast_sampling: int = 0

    # clock machinery
    clones: int = 0
    increments: int = 0

    # metadata allocation, in words (drives the GC/bias model)
    words_allocated: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Return a plain dict of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {k: now[k] - earlier.get(k, 0) for k in now}

    # Convenience aggregates -------------------------------------------------

    @property
    def joins_slow(self) -> int:
        return self.joins_slow_sampling + self.joins_slow_nonsampling

    @property
    def joins_fast(self) -> int:
        return self.joins_fast_sampling + self.joins_fast_nonsampling

    @property
    def reads(self) -> int:
        return (
            self.reads_slow_sampling
            + self.reads_slow_nonsampling
            + self.reads_fast_nonsampling
            + self.reads_fast_sampling
        )

    @property
    def writes(self) -> int:
        return (
            self.writes_slow_sampling
            + self.writes_slow_nonsampling
            + self.writes_fast_nonsampling
            + self.writes_fast_sampling
        )


@dataclass
class CostModel:
    """Abstract cost accounting for Figures 7–9.

    Wall-clock overhead in the paper depends on JIT/hardware specifics we
    cannot reproduce; the *shape* claim (overhead proportional to r) is a
    statement about how many operations of each cost class execute.  This
    model assigns unit costs and evaluates a detector's total analysis
    cost from its :class:`OpCounters`.

    Default weights are calibrated so that the r=0 configuration lands
    near the paper's ~33% overhead and r=100% near 12x on the bundled
    workloads; they can be overridden for sensitivity studies.
    """

    fast_path: float = 0.18  # inlined check, paper reports ~18%
    slow_path: float = 6.0  # out-of-line metadata analysis, O(1)
    join_fast: float = 1.0  # version-epoch comparison
    copy_shallow: float = 1.0
    clone_or_deep: float = 4.0  # per-thread component cost added below
    per_thread: float = 0.6  # cost per vector element for O(n) ops

    def cost(self, counters: OpCounters, n_threads: int) -> float:
        """Total modeled analysis cost in arbitrary work units."""
        on = self.clone_or_deep + self.per_thread * max(1, n_threads)
        return (
            self.fast_path
            * (
                counters.reads_fast_nonsampling
                + counters.reads_fast_sampling
                + counters.writes_fast_nonsampling
                + counters.writes_fast_sampling
            )
            + self.slow_path
            * (
                counters.reads_slow_sampling
                + counters.reads_slow_nonsampling
                + counters.writes_slow_sampling
                + counters.writes_slow_nonsampling
            )
            + self.join_fast * counters.joins_fast
            + self.copy_shallow
            * (counters.copies_shallow_sampling + counters.copies_shallow_nonsampling)
            + on
            * (
                counters.joins_slow
                + counters.copies_deep_sampling
                + counters.copies_deep_nonsampling
                + counters.clones
            )
        )
