"""Core PACER algorithm: clocks, versioning, metadata, sampling."""

from .clocks import Epoch, MIN_EPOCH, ReadMap, VectorClock, epoch_leq_vc
from .metadata import SyncMeta, ThreadMeta, VarState
from .pacer import PacerDetector
from .sampling import (
    BiasCorrectedController,
    FixedRateController,
    SamplingController,
    ScriptedController,
)
from .stats import CostModel, OpCounters
from .versioning import BOTTOM_VE, SharableClock, TOP_VE, VersionEpoch

__all__ = [
    "Epoch",
    "MIN_EPOCH",
    "ReadMap",
    "VectorClock",
    "epoch_leq_vc",
    "SyncMeta",
    "ThreadMeta",
    "VarState",
    "PacerDetector",
    "SamplingController",
    "FixedRateController",
    "BiasCorrectedController",
    "ScriptedController",
    "CostModel",
    "OpCounters",
    "BOTTOM_VE",
    "TOP_VE",
    "VersionEpoch",
    "SharableClock",
]
