"""Packed-state analysis kernels shared by scalar and batched dispatch.

The object backend keeps two transcriptions of Algorithms 7/8 and 12/13:
the scalar typed handlers (the semantic reference) and the inlined batch
loops from the dispatch layer.  The packed backend folds them: one kernel
per detector family drives both paths — the scalar handlers call it with
a singleton event, the batch path with whole columns — so there is a
single transcription of each algorithm over the packed representation.

Everything here works on :class:`~repro.core.backend.PackedVarStore`
arrays: epochs are packed ints (:func:`~repro.core.clocks.pack_epoch`),
``0`` is ⊥e, and :data:`~repro.core.backend.READ_SHARED` marks an
inflated read map living in the arena's side table.  The differential
suite holds every kernel to the object backend's races, operation
counts, and footprint words, event for event.
"""

from __future__ import annotations

from itertools import compress as _compress

from ..detectors.base import Race, READ_WRITE, WRITE_READ, WRITE_WRITE
from ..trace.batch import ACCESS01_TABLE, RUN_MASK_TABLE
from .backend import READ_SHARED
from .clocks import TID_BITS, TID_MASK, VectorClock

__all__ = [
    "fasttrack_access_packed",
    "fasttrack_kernel",
    "pacer_access_packed",
    "pacer_kernel",
]


def fasttrack_access_packed(det, k, tid, var, site, index):
    """One FASTTRACK access (Algorithm 7 if ``k == 0``, else 8) over a
    packed arena — the exact scalar slow path behind the vectorized
    ``packed-np`` column kernels and the packed-np scalar dispatch.

    Works against any store with the packed-arena surface
    (:class:`~repro.core.backend.PackedVarStore` or the NumPy variant).
    Array scalars read from NumPy arenas are cast back to plain ints
    before they can reach :class:`Race` records or inflated read maps,
    so reports and state stay byte-identical with the list-based arena.
    """
    arena = det._arena
    counters = det.counters
    thread_clock = det._thread_clock
    clock = thread_clock.get(tid)
    if clock is None:
        clock = VectorClock()
        clock.increment(tid)
        thread_clock[tid] = clock
        counters.words_allocated += 2
    c = clock._c
    own = c[tid] if tid < len(c) else 0
    packed_own = (own << TID_BITS) | tid
    slot = arena.index.get(var)
    if slot is None:
        slot = arena.alloc(var)
        counters.words_allocated += 2
    wep, rep = arena.wep, arena.rep
    rshared = arena.rshared
    races_append = det.races.append
    w = int(wep[slot])
    if k == 0:  # rd (Algorithm 7)
        counters.reads_slow_sampling += 1
        r = int(rep[slot])
        if r == packed_own:
            return  # same read epoch: no action
        if w:
            wt = w & TID_MASK
            wc = w >> TID_BITS
            if wc > (c[wt] if wt < len(c) else 0):
                races_append(
                    Race(var, WRITE_READ, wt, wc, arena.wsite[slot],
                         tid, site, index, int(arena.windex[slot]))
                )
        if r == 0:
            rep[slot] = packed_own
            arena.rsite[slot] = site
            arena.rindex[slot] = index
            counters.words_allocated += 2
        elif r != READ_SHARED:
            rt = r & TID_MASK
            if (r >> TID_BITS) <= (c[rt] if rt < len(c) else 0):
                rep[slot] = packed_own  # overwrite read epoch
                arena.rsite[slot] = site
                arena.rindex[slot] = index
            else:
                rshared[slot] = {
                    rt: (r >> TID_BITS, arena.rsite[slot],
                         int(arena.rindex[slot])),
                    tid: (own, site, index),
                }
                rep[slot] = READ_SHARED
                counters.words_allocated += 2
        else:
            rshared[slot][tid] = (own, site, index)
            counters.words_allocated += 2
    else:  # wr (Algorithm 8)
        counters.writes_slow_sampling += 1
        if w == packed_own:
            return  # same write epoch: no action
        if w:
            wt = w & TID_MASK
            wc = w >> TID_BITS
            if wc > (c[wt] if wt < len(c) else 0):
                races_append(
                    Race(var, WRITE_WRITE, wt, wc, arena.wsite[slot],
                         tid, site, index, int(arena.windex[slot]))
                )
        r = int(rep[slot])
        if r:
            if r != READ_SHARED:
                rt = r & TID_MASK
                rc = r >> TID_BITS
                if rc > (c[rt] if rt < len(c) else 0):
                    races_append(
                        Race(var, READ_WRITE, rt, rc, arena.rsite[slot],
                             tid, site, index, int(arena.rindex[slot]))
                    )
            else:
                for u, (rc, rs, ri) in rshared[slot].items():
                    if rc > (c[u] if u < len(c) else 0):
                        races_append(
                            Race(var, READ_WRITE, u, rc, rs,
                                 tid, site, index, ri)
                        )
                del rshared[slot]
            rep[slot] = 0  # modified FASTTRACK: clear read map
        wep[slot] = packed_own
        arena.wsite[slot] = site
        arena.windex[slot] = index
        counters.words_allocated += 2


def fasttrack_kernel(det, kinds, tids, targets, sites, seen0):
    """Algorithms 7/8 over packed arrays (FASTTRACK, both dispatch paths).

    ``seen0`` is the event index before the first event in ``kinds``;
    the scalar wrappers pass ``_events_seen - 1`` (``apply`` has already
    counted the event), the batch wrapper passes ``_events_seen``.

    Access events never mutate vector clocks, so per-thread clock lookups
    (including the packed ``own`` epoch) are cached across each run of
    accesses and invalidated at every synchronization or period event —
    this is where the packed kernel's throughput comes from.
    """
    arena = det._arena
    index = arena.index
    index_get = index.get
    alloc = arena.alloc
    wep, wsite, windex = arena.wep, arena.wsite, arena.windex
    rep, rsite, rindex = arena.rep, arena.rsite, arena.rindex
    rshared = arena.rshared
    thread_clock = det._thread_clock
    threads_add = det._threads.add
    races_append = det.races.append
    seen = seen0
    reads = 0
    writes = 0
    words = 0
    last_tid = None
    cache = {}  # tid -> (components, own, packed own epoch)
    cache_get = cache.get
    for k, tid, target, site in zip(kinds, tids, targets, sites):
        seen += 1
        if k <= 1:  # rd / wr (Algorithms 7 and 8)
            if tid != last_tid:
                threads_add(tid)
                last_tid = tid
            entry = cache_get(tid)
            if entry is None:
                clock = thread_clock.get(tid)
                if clock is None:
                    clock = VectorClock()
                    clock.increment(tid)
                    thread_clock[tid] = clock
                    words += 2
                c = clock._c
                own = c[tid] if tid < len(c) else 0
                entry = (c, own, (own << TID_BITS) | tid)
                cache[tid] = entry
            c, own, packed_own = entry
            slot = index_get(target)
            if slot is None:
                slot = alloc(target)
                words += 2
            if k == 0:  # rd
                reads += 1
                r = rep[slot]
                if r == packed_own:
                    continue  # same read epoch: no action
                w = wep[slot]
                if w:
                    wt = w & TID_MASK
                    wc = w >> TID_BITS
                    if wc > (c[wt] if wt < len(c) else 0):
                        races_append(
                            Race(target, WRITE_READ, wt, wc, wsite[slot],
                                 tid, site, seen - 1, windex[slot])
                        )
                if r == 0:
                    rep[slot] = packed_own
                    rsite[slot] = site
                    rindex[slot] = seen - 1
                    words += 2
                elif r != READ_SHARED:
                    rt = r & TID_MASK
                    if (r >> TID_BITS) <= (c[rt] if rt < len(c) else 0):
                        rep[slot] = packed_own  # overwrite read epoch
                        rsite[slot] = site
                        rindex[slot] = seen - 1
                    else:
                        # inflate; rt != tid here (a same-thread epoch is
                        # either same-epoch or ordered, handled above)
                        rshared[slot] = {
                            rt: (r >> TID_BITS, rsite[slot], rindex[slot]),
                            tid: (own, site, seen - 1),
                        }
                        rep[slot] = READ_SHARED
                        words += 2
                else:
                    rshared[slot][tid] = (own, site, seen - 1)
                    words += 2
            else:  # wr
                writes += 1
                w = wep[slot]
                if w == packed_own:
                    continue  # same write epoch: no action
                if w:
                    wt = w & TID_MASK
                    wc = w >> TID_BITS
                    if wc > (c[wt] if wt < len(c) else 0):
                        races_append(
                            Race(target, WRITE_WRITE, wt, wc, wsite[slot],
                                 tid, site, seen - 1, windex[slot])
                        )
                r = rep[slot]
                if r:
                    if r != READ_SHARED:
                        rt = r & TID_MASK
                        rc = r >> TID_BITS
                        if rc > (c[rt] if rt < len(c) else 0):
                            races_append(
                                Race(target, READ_WRITE, rt, rc, rsite[slot],
                                     tid, site, seen - 1, rindex[slot])
                            )
                    else:
                        for u, (rc, rs, ri) in rshared[slot].items():
                            if rc > (c[u] if u < len(c) else 0):
                                races_append(
                                    Race(target, READ_WRITE, u, rc, rs,
                                         tid, site, seen - 1, ri)
                                )
                        del rshared[slot]
                    rep[slot] = 0  # modified FASTTRACK: clear read map
                wep[slot] = packed_own
                wsite[slot] = site
                windex[slot] = seen - 1
                words += 2
        elif k >= 10:  # m_enter / m_exit / alloc: no-ops here
            continue
        elif k == 8:  # period boundaries carry no acting thread
            det._events_seen = seen
            det.begin_sampling()
            cache.clear()
        elif k == 9:
            det._events_seen = seen
            det.end_sampling()
            cache.clear()
        else:  # synchronization actions mutate clocks: drop the cache
            det._events_seen = seen
            if tid != last_tid:
                threads_add(tid)
                last_tid = tid
            if k == 2:
                det.acquire(tid, target)
            elif k == 3:
                det.release(tid, target)
            elif k == 4:
                threads_add(target)
                det.fork(tid, target)
            elif k == 5:
                det.join(tid, target)
            elif k == 6:
                det.vol_read(tid, target)
            else:  # k == 7
                det.vol_write(tid, target)
            cache.clear()
    det._events_seen = seen
    counters = det.counters
    counters.reads_slow_sampling += reads
    counters.writes_slow_sampling += writes
    counters.words_allocated += words


def pacer_access_packed(det, k, tid, var, site, index):
    """One PACER access (Algorithm 12 if ``k == 0``, else 13) over packed
    arrays — the single transcription behind the packed scalar handlers
    and every non-bulk event of :func:`pacer_kernel`.

    Branches on ``det.sampling`` internally: the sampling body is exactly
    FASTTRACK (Algorithms 7/8), the non-sampling body runs the race
    checks against frozen clocks and applies the Table 4 discard rules,
    releasing the variable's arena slot once its metadata is fully null.
    """
    arena = det._arena
    slot = arena.index.get(var)
    counters = det.counters
    sampling = det.sampling
    if k == 0:
        if not sampling:
            if slot is None:
                counters.reads_fast_nonsampling += 1  # inlined fast path
                return
            counters.reads_slow_nonsampling += 1
        else:
            counters.reads_slow_sampling += 1
    else:
        if not sampling:
            if slot is None:
                counters.writes_fast_nonsampling += 1  # inlined fast path
                return
            counters.writes_slow_nonsampling += 1
        else:
            counters.writes_slow_sampling += 1
    if slot is None:
        slot = arena.alloc(var)
        counters.words_allocated += 2
    tmeta = det._thread_meta(tid)
    c = tmeta.clock._c
    own = c[tid] if tid < len(c) else 0
    packed_own = (own << TID_BITS) | tid
    wep, rep = arena.wep, arena.rep
    rshared = arena.rshared
    races_append = det.races.append
    # plain-int casts: NumPy arenas hand back array scalars, which must
    # not leak into Race records or read maps (packed lists are no-ops)
    w = int(wep[slot])
    r = int(rep[slot])
    if k == 0:  # rd (Algorithm 12)
        if sampling and r == packed_own:
            return  # same read epoch: no action (exactly FASTTRACK)
        if w:
            wt = w & TID_MASK
            wc = w >> TID_BITS
            if wc > (c[wt] if wt < len(c) else 0):
                races_append(
                    Race(var, WRITE_READ, wt, wc, arena.wsite[slot],
                         tid, site, index, int(arena.windex[slot]))
                )
        if sampling:
            if r == 0:
                rep[slot] = packed_own
                arena.rsite[slot] = site
                arena.rindex[slot] = index
                counters.words_allocated += 2
            elif r != READ_SHARED:
                rt = r & TID_MASK
                if (r >> TID_BITS) <= (c[rt] if rt < len(c) else 0):
                    rep[slot] = packed_own  # overwrite read epoch
                    arena.rsite[slot] = site
                    arena.rindex[slot] = index
                else:
                    rshared[slot] = {
                        rt: (r >> TID_BITS, arena.rsite[slot],
                             int(arena.rindex[slot])),
                        tid: (own, site, index),
                    }
                    rep[slot] = READ_SHARED
                    counters.words_allocated += 2
            else:
                rshared[slot][tid] = (own, site, index)
                counters.words_allocated += 2
        else:
            if r:
                if r != READ_SHARED:
                    # Table 4 Rule 2: discard a read epoch FASTTRACK would
                    # have overwritten; same-epoch (Rule 1) and concurrent
                    # (Rule 4) reads are kept.
                    rt = r & TID_MASK
                    if r != packed_own and (
                        (r >> TID_BITS) <= (c[rt] if rt < len(c) else 0)
                    ):
                        rep[slot] = 0
                else:  # Rule 3: drop only t's entry, never deflate
                    shared = rshared[slot]
                    shared.pop(tid, None)
                    if not shared:
                        rep[slot] = 0
                        del rshared[slot]
            if det.discard_metadata and wep[slot] == 0 and rep[slot] == 0:
                arena.release(var, slot)
    else:  # wr (Algorithm 13)
        if sampling and w == packed_own:
            return  # same write epoch: no action (exactly FASTTRACK)
        if w:
            wt = w & TID_MASK
            wc = w >> TID_BITS
            if wc > (c[wt] if wt < len(c) else 0):
                races_append(
                    Race(var, WRITE_WRITE, wt, wc, arena.wsite[slot],
                         tid, site, index, int(arena.windex[slot]))
                )
        if r:
            if r != READ_SHARED:
                rt = r & TID_MASK
                rc = r >> TID_BITS
                if rc > (c[rt] if rt < len(c) else 0):
                    races_append(
                        Race(var, READ_WRITE, rt, rc, arena.rsite[slot],
                             tid, site, index, int(arena.rindex[slot]))
                    )
            else:
                for u, (rc, rs, ri) in rshared[slot].items():
                    if rc > (c[u] if u < len(c) else 0):
                        races_append(
                            Race(var, READ_WRITE, u, rc, rs,
                                 tid, site, index, ri)
                        )
        if sampling:
            wep[slot] = packed_own
            arena.wsite[slot] = site
            arena.windex[slot] = index
            rep[slot] = 0  # modified FASTTRACK: clear read map
            rshared.pop(slot, None)
            counters.words_allocated += 2
        else:
            if w == packed_own:
                return  # same epoch: keep the sampled metadata
            wep[slot] = 0  # discard write epoch and read map
            rep[slot] = 0
            rshared.pop(slot, None)
            if det.discard_metadata:
                arena.release(var, slot)


def pacer_kernel(det, kinds, tids, targets, sites, seen0):
    """PACER's run-bulked batch loop over the packed arena.

    Same run-splitting scaffold as the object batch loop — byte-mask run
    scans, bulk retirement of non-sampling runs disjoint from tracked
    variables — but every per-event access, sampling or not, goes through
    the one transcription in :func:`pacer_access_packed`.
    """
    n = len(kinds)
    kind_bytes = bytes(kinds)
    mask = kind_bytes.translate(RUN_MASK_TABLE)
    access01 = kind_bytes.translate(ACCESS01_TABLE)
    find_break = mask.find
    count_kind = mask.count  # runs: byte 0 = read, 1 = write, 3 = no-op
    arena = det._arena
    tracked = arena.index
    tracked_disjoint = tracked.keys().isdisjoint
    counters = det.counters
    threads = det._threads
    threads_add = threads.add
    sampling = det.sampling
    reads_fast = 0
    writes_fast = 0
    compress = _compress
    threads.update(compress(tids, access01))
    i = 0
    while i < n:
        k = kinds[i]
        if k <= 1 or k >= 10:  # a run starts here; find where it ends
            j = find_break(2, i)
            if j < 0:
                j = n
            w = count_kind(1, i, j)
            r = count_kind(0, i, j)
            pure = w + r == j - i  # no riding no-op events in the run
            if not sampling and (
                not tracked
                or tracked_disjoint(
                    targets[i:j]
                    if pure
                    else compress(targets[i:j], access01[i:j])
                )
            ):
                # Algorithm 12/13 fast path, retired in bulk
                writes_fast += w
                reads_fast += r
                i = j
                continue
            if sampling:
                for idx in range(i, j):
                    k2 = kinds[idx]
                    if k2 > 1:
                        continue  # m_enter / m_exit / alloc: no-ops
                    pacer_access_packed(
                        det, k2, tids[idx], targets[idx], sites[idx], seen0 + idx
                    )
            else:
                # live run: most targets still miss the arena, so the
                # Algorithm 12/13 fast path stays inline and only tracked
                # variables pay the per-event call
                for idx in range(i, j):
                    k2 = kinds[idx]
                    if k2 > 1:
                        continue
                    if targets[idx] not in tracked:
                        if k2:
                            writes_fast += 1
                        else:
                            reads_fast += 1
                        continue
                    pacer_access_packed(
                        det, k2, tids[idx], targets[idx], sites[idx], seen0 + idx
                    )
            i = j
            continue
        det._events_seen = seen0 + i + 1
        if k == 8:  # period boundaries carry no acting thread
            det.begin_sampling()
            sampling = det.sampling
        elif k == 9:
            det.end_sampling()
            sampling = det.sampling
        else:  # synchronization actions (2 <= k <= 7)
            tid = tids[i]
            target = targets[i]
            threads_add(tid)
            if k == 2:
                det.acquire(tid, target)
            elif k == 3:
                det.release(tid, target)
            elif k == 4:
                threads_add(target)
                det.fork(tid, target)
            elif k == 5:
                det.join(tid, target)
            elif k == 6:
                det.vol_read(tid, target)
            else:  # k == 7
                det.vol_write(tid, target)
        i += 1
    det._events_seen = seen0 + n
    counters.reads_fast_nonsampling += reads_fast
    counters.writes_fast_nonsampling += writes_fast
