"""Deterministic fault injection for the resilient experiment runner.

The supervisor's crash-isolation, retry, and quarantine machinery
(:mod:`repro.analysis.supervisor`) would be untestable folklore without
a way to *make* workers fail on demand — reproducibly, so a chaos run
in CI fails the same way on every machine.  This module provides that:

* a :class:`FaultPlan` — a tiny declarative grammar, parsed from the
  ``REPRO_FAULT_PLAN`` environment variable (or a ``--fault-plan``
  flag), describing which trials fail, how, and how many times;
* :func:`execute_fault` — the worker-side actuator that turns a matched
  rule into an actual crash / hang / exception / corrupted result;
* byte-corruption helpers (:func:`flip_byte`, :func:`truncate_bytes`)
  used by the trace-integrity tests to prove the binio v2 CRC trailer
  catches what it claims to catch.

Fault-plan grammar
------------------

A plan is a ``;``-separated list of rules::

    rule     := kind "@" selector [ "*" times ]
    kind     := "crash" | "hang" | "raise" | "corrupt"
    selector := INDEX | "seed%" MOD "=" REM
    times    := COUNT | "inf"

``INDEX`` matches one task by its position in the expanded matrix (the
same index the checkpoint journal and quarantine report use).  The
``seed%M=R`` form instead matches every task whose :func:`task_seed
<repro.analysis.parallel.task_seed>` satisfies ``seed % M == R`` — a
position-independent selector keyed off the trial's own deterministic
identity.  ``times`` bounds how many *attempts* fire the fault: the
default ``1`` makes a transient failure (the retry succeeds), ``*inf``
makes a poison task that the supervisor must quarantine.

Examples::

    crash@3                 worker running task 3 dies (first attempt only)
    hang@5*2                task 5 hangs on attempts 1 and 2, then succeeds
    raise@7*inf             task 7 is poison: raises on every attempt
    corrupt@seed%13=4       corrupt the result of tasks with seed % 13 == 4

Everything here is a pure function of (task index, task seed, attempt
number) — no RNG, no wall clock — so a plan produces the identical fault
sequence on every run, which the determinism pins in
``tests/test_supervisor.py`` rely on.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "WIRE_FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlanError",
    "FaultRule",
    "FaultPlan",
    "execute_fault",
    "flip_byte",
    "truncate_bytes",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: the four failure modes a worker can exhibit
FAULT_KINDS = ("crash", "hang", "raise", "corrupt")

#: wire-level failure modes, actuated by :class:`repro.net.chaos.ChaosProxy`
#: against telemetry frames instead of worker processes.  Same grammar,
#: different actuator: the selector's *index* is the frame's position on
#: its connection and *seed* is a pure position hash of (plan seed,
#: connection, frame), so one plan string replays the identical
#: byte-level fault sequence on every run — even though retransmitted
#: frames carry fresh wall-clock stamps.
WIRE_FAULT_KINDS = (
    "conn_drop",       # close both sides before forwarding the frame
    "frame_corrupt",   # flip one byte inside the frame, then forward
    "frame_truncate",  # forward a prefix of the frame, then drop the link
    "stall",           # long pause before forwarding (slow-client shape)
    "delay",           # short pause before forwarding (jittery link)
    "dup",             # forward the frame twice
)

#: exit code of an injected crash — distinctive in quarantine reports
CRASH_EXIT_CODE = 86

#: how long an injected hang sleeps; far beyond any sane task timeout,
#: finite so an unsupervised test run still terminates eventually
HANG_SECONDS = 3600.0

#: ``times`` value meaning "every attempt" (a poison task)
INFINITE = -1


class FaultPlanError(ValueError):
    """A fault-plan string that does not follow the grammar."""


class FaultInjected(RuntimeError):
    """The exception thrown by a ``raise`` fault."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: which kind fires, for whom, how many times."""

    kind: str
    #: match by position in the expanded matrix (None: use ``mod``)
    index: Optional[int] = None
    #: match by ``task_seed % mod[0] == mod[1]`` (None: use ``index``)
    mod: Optional[Tuple[int, int]] = None
    #: attempts 1..times fire the fault; ``INFINITE`` fires forever
    times: int = 1

    def matches(self, index: int, seed: int, attempt: int) -> bool:
        if self.times != INFINITE and attempt > self.times:
            return False
        if self.index is not None:
            return index == self.index
        assert self.mod is not None
        divisor, remainder = self.mod
        return seed % divisor == remainder

    def spec(self) -> str:
        """Render back to grammar form (for reports and round-trips)."""
        sel = str(self.index) if self.index is not None else (
            f"seed%{self.mod[0]}={self.mod[1]}"
        )
        times = "" if self.times == 1 else (
            "*inf" if self.times == INFINITE else f"*{self.times}"
        )
        return f"{self.kind}@{sel}{times}"


def _parse_rule(text: str, kinds: Tuple[str, ...] = FAULT_KINDS) -> FaultRule:
    head, sep, sel = text.partition("@")
    if not sep:
        raise FaultPlanError(f"fault rule {text!r} is missing '@selector'")
    kind = head.strip()
    if kind not in kinds:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} (choices: {', '.join(kinds)})"
        )
    sel = sel.strip()
    times = 1
    if "*" in sel:
        sel, _, times_text = sel.rpartition("*")
        times_text = times_text.strip()
        if times_text == "inf":
            times = INFINITE
        else:
            try:
                times = int(times_text)
            except ValueError:
                raise FaultPlanError(
                    f"bad times {times_text!r} in rule {text!r} (want int or 'inf')"
                ) from None
            if times < 1:
                raise FaultPlanError(f"times must be >= 1 in rule {text!r}")
        sel = sel.strip()
    if sel.startswith("seed%"):
        body = sel[len("seed%"):]
        mod_text, eq, rem_text = body.partition("=")
        if not eq:
            raise FaultPlanError(f"bad selector {sel!r} (want seed%M=R)")
        try:
            divisor, remainder = int(mod_text), int(rem_text)
        except ValueError:
            raise FaultPlanError(f"bad selector {sel!r} (want seed%M=R)") from None
        if divisor <= 0:
            raise FaultPlanError(f"modulus must be positive in {sel!r}")
        return FaultRule(kind, mod=(divisor, remainder % divisor), times=times)
    try:
        index = int(sel)
    except ValueError:
        raise FaultPlanError(
            f"bad selector {sel!r} (want a task index or seed%M=R)"
        ) from None
    if index < 0:
        raise FaultPlanError(f"task index must be >= 0 in {sel!r}")
    return FaultRule(kind, index=index, times=times)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, order-preserving set of fault rules."""

    rules: Tuple[FaultRule, ...]

    @classmethod
    def parse(
        cls, text: str, kinds: Tuple[str, ...] = FAULT_KINDS
    ) -> "FaultPlan":
        """Parse the grammar documented in the module docstring.

        ``kinds`` selects the vocabulary: :data:`FAULT_KINDS` for worker
        faults (the default), :data:`WIRE_FAULT_KINDS` for the network
        chaos proxy.  The rule/selector/times grammar is shared.
        """
        rules = tuple(
            _parse_rule(chunk.strip(), kinds)
            for chunk in text.split(";")
            if chunk.strip()
        )
        if not rules:
            raise FaultPlanError(f"fault plan {text!r} contains no rules")
        return cls(rules)

    @classmethod
    def from_env(
        cls,
        env: Optional[Mapping[str, str]] = None,
        kinds: Tuple[str, ...] = FAULT_KINDS,
    ) -> Optional["FaultPlan"]:
        """The plan in ``REPRO_FAULT_PLAN``, or None when unset/empty."""
        text = (env if env is not None else os.environ).get(FAULT_PLAN_ENV, "")
        return cls.parse(text, kinds) if text.strip() else None

    def match(self, index: int, seed: int, attempt: int) -> Optional[FaultRule]:
        """The first rule firing for this (task, attempt), or None."""
        for rule in self.rules:
            if rule.matches(index, seed, attempt):
                return rule
        return None

    def spec(self) -> str:
        return ";".join(rule.spec() for rule in self.rules)


def execute_fault(rule: FaultRule) -> None:
    """Actuate a matched rule inside a worker process.

    ``crash`` exits the interpreter bypassing all cleanup (the closest
    portable stand-in for a segfault/OOM-kill); ``hang`` sleeps past any
    reasonable task timeout; ``raise`` throws :class:`FaultInjected`.
    ``corrupt`` is a no-op here — the *caller* mutates the result after
    computing it, since only it holds the value to damage.
    """
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if rule.kind == "hang":
        deadline = time.monotonic() + HANG_SECONDS
        while time.monotonic() < deadline:  # pragma: no cover - killed first
            time.sleep(0.1)
        return
    if rule.kind == "raise":
        raise FaultInjected(f"injected fault: {rule.spec()}")
    # "corrupt": handled by the caller


# -- byte-corruption helpers (trace-integrity tests) --------------------------


def flip_byte(data: bytes, offset: int, mask: int = 0xFF) -> bytes:
    """Return ``data`` with the byte at ``offset`` XOR-ed by ``mask``.

    Negative offsets count from the end, as with indexing.  The mask
    defaults to flipping every bit so the change can never be a no-op.
    """
    if mask == 0:
        raise ValueError("mask 0 would be a no-op corruption")
    out = bytearray(data)
    out[offset] ^= mask
    return bytes(out)


def truncate_bytes(data: bytes, drop: int) -> bytes:
    """Return ``data`` with the last ``drop`` bytes removed."""
    if drop <= 0:
        raise ValueError(f"drop must be positive, got {drop}")
    if drop >= len(data):
        return b""
    return data[:-drop]
