"""Experiment scaling knobs.

The paper's experiments run 50-500 trials of programs that execute
billions of operations.  The default configuration here is sized so the
whole benchmark suite finishes in minutes; set the ``REPRO_SCALE``
environment variable above 1.0 to move toward paper-scale statistics
(more trials, longer runs) or below 1.0 for a quick smoke pass.
"""

from __future__ import annotations

import math
import os

__all__ = ["scale", "scaled_trials", "num_trials_for_rate"]


def scale() -> float:
    """The global experiment scale factor (env ``REPRO_SCALE``, default 1)."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(value, 0.01)


def scaled_trials(base: int, minimum: int = 2) -> int:
    """Scale a trial count by ``REPRO_SCALE`` with a sane floor."""
    return max(minimum, int(round(base * scale())))


def num_trials_for_rate(rate: float, base: int = 50, cap: int = 500) -> int:
    """The paper's trial-count formula (§5.1), scaled.

    numTrials_r = min(max(ceil(1000% / r), 50), 500); e.g. 500 trials at
    r=1%, 334 at 3%, 50 at 100%.  ``REPRO_SCALE`` multiplies the result.
    """
    if rate <= 0:
        raise ValueError("sampling rate must be positive")
    raw = min(max(math.ceil(10.0 / rate), base), cap)
    return max(2, int(round(raw * scale())))
