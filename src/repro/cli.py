"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``workloads`` — list the bundled synthetic benchmarks.
* ``record``    — run a workload and write its trace to a file.
* ``analyze``   — run a detector over a trace file and report races
  (``--batch`` uses the columnar batched fast path; both print
  events/sec and ns/event from the detector's perf counters).
* ``oracle``    — exact happens-before ground truth for a trace file.
* ``detect``    — run a workload live under a detector (PACER with a
  sampling rate, or any always-on detector).
* ``matrix``    — run a (workload × detector × rate × seed) experiment
  matrix, optionally fanned across worker processes with ``--jobs``.
* ``convert``   — convert traces between the text and binary formats.

Trace file formats are auto-detected (binary traces start with the
``PACR`` magic); ``--format`` forces one.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .analysis.parallel import (
    DETECTOR_FACTORIES,
    default_jobs,
    expand_matrix,
    merge_matrix,
    run_matrix,
)
from .analysis.tables import render_table
from .core.pacer import PacerDetector
from .core.sampling import BiasCorrectedController
from .detectors import (
    Detector,
    DjitPlusDetector,
    EraserDetector,
    FastTrackDetector,
    GenericDetector,
    GoldilocksDetector,
    LiteRaceDetector,
)
from .sim.runtime import Runtime, RuntimeConfig
from .sim.scheduler import run_program
from .sim.workloads import WORKLOADS, build_program
from .trace.batch import DEFAULT_BATCH_SIZE
from .trace.binio import MAGIC, dump_trace_binary, load_trace_binary
from .trace.oracle import HBOracle
from .trace.textio import dump_trace, load_trace
from .trace.trace import Trace

__all__ = ["main", "DETECTORS"]

DETECTORS: Dict[str, Callable[[], Detector]] = {
    "pacer": PacerDetector,
    "fasttrack": FastTrackDetector,
    "generic": GenericDetector,
    "djit": DjitPlusDetector,
    "goldilocks": GoldilocksDetector,
    "literace": LiteRaceDetector,
    "eraser": EraserDetector,
}


def _load(path: Path, fmt: str) -> Trace:
    if fmt == "auto":
        fmt = "binary" if path.read_bytes()[:4] == MAGIC else "text"
    if fmt == "binary":
        return load_trace_binary(path)
    return load_trace(path)


def _dump(trace, path: Path, fmt: str) -> None:
    if fmt == "auto":
        fmt = "binary" if path.suffix in (".bin", ".pacr") else "text"
    if fmt == "binary":
        dump_trace_binary(trace, path)
    else:
        dump_trace(trace, path)


def _print_races(detector: Detector, limit: int) -> None:
    print(
        f"{detector.name}: {len(detector.races)} race reports, "
        f"{len(detector.distinct_races)} distinct site pairs"
    )
    rows = [
        [r.kind, r.var, f"t{r.first_tid}@{r.first_site}", f"t{r.second_tid}@{r.second_site}", r.index]
        for r in detector.races[:limit]
    ]
    if rows:
        print(render_table(["kind", "var", "first", "second", "at event"], rows))
    if len(detector.races) > limit:
        print(f"... and {len(detector.races) - limit} more (raise --limit)")


# -- commands -----------------------------------------------------------------


def cmd_workloads(_args) -> int:
    rows = [
        [name, spec.threads_total, spec.max_live, len(spec.racy_sites), spec.iterations]
        for name, spec in sorted(WORKLOADS.items())
    ]
    print(
        render_table(
            ["workload", "threads", "max live", "injected races", "hot iterations"],
            rows,
        )
    )
    return 0


def cmd_record(args) -> int:
    spec = WORKLOADS[args.workload].scaled(args.scale)
    trace = run_program(build_program(spec, args.seed), seed=args.seed)
    _dump(trace, Path(args.output), args.format)
    print(f"wrote {len(trace)} events to {args.output}")
    return 0


def cmd_analyze(args) -> int:
    trace = _load(Path(args.trace), args.format)
    detector = DETECTORS[args.detector]()
    if args.batch:
        detector.run_batch(trace, batch_size=args.batch_size)
    else:
        detector.run(trace)
    print(f"perf: {detector.perf.summary()}")
    _print_races(detector, args.limit)
    return 1 if detector.races and args.fail_on_race else 0


def cmd_oracle(args) -> int:
    trace = _load(Path(args.trace), args.format)
    oracle = HBOracle(trace)
    races = oracle.all_races()
    print(
        f"{len(trace)} events, {len(oracle.accesses)} accesses, "
        f"{len(races)} racing pairs on {len(oracle.racy_variables())} variables"
    )
    rows = [
        [r.kind, r.first.var, f"t{r.first.tid}@{r.first.site}",
         f"t{r.second.tid}@{r.second.site}", r.first.index, r.second.index]
        for r in races[: args.limit]
    ]
    if rows:
        print(render_table(["kind", "var", "first", "second", "i", "j"], rows))
    return 0


def cmd_detect(args) -> int:
    spec = WORKLOADS[args.workload].scaled(args.scale)
    detector = DETECTORS[args.detector]()
    controller = None
    if args.rate is not None:
        if args.detector != "pacer":
            print("--rate only applies to the pacer detector", file=sys.stderr)
            return 2
        controller = BiasCorrectedController(
            args.rate / 100.0, rng=random.Random(args.seed)
        )
    runtime = Runtime(
        build_program(spec, args.seed),
        detector,
        controller=controller,
        config=RuntimeConfig(track_memory=False),
        seed=args.seed,
    )
    runtime.run()
    if controller is not None:
        print(f"effective sampling rate: {runtime.effective_sampling_rate:.2%}")
    _print_races(detector, args.limit)
    return 0


def cmd_matrix(args) -> int:
    rates = [r / 100.0 for r in args.rates] if args.rates else [None]
    tasks = expand_matrix(
        workloads=args.workloads,
        detectors=args.detectors,
        rates=rates,
        seeds=range(args.seeds),
        scale=args.scale,
    )
    results = run_matrix(tasks, jobs=args.jobs)
    merged = merge_matrix(tasks, results)
    rows = []
    for (workload, detector, rate), stats in sorted(merged.items(), key=str):
        rows.append(
            [
                workload,
                detector,
                "-" if rate is None else f"{rate:.0%}",
                stats.events,
                stats.races,
                stats.distinct_races,
                f"{stats.effective_rate:.2%}",
                f"{stats.perf.events_per_sec:,.0f}",
            ]
        )
    print(
        render_table(
            ["workload", "detector", "rate", "events", "races",
             "distinct", "eff rate", "events/s"],
            rows,
        )
    )
    print(
        f"{len(tasks)} trials over {args.jobs} job(s); "
        f"per-trial results are independent of --jobs"
    )
    return 0


def cmd_convert(args) -> int:
    trace = _load(Path(args.input), "auto")
    _dump(trace, Path(args.output), args.format)
    print(f"converted {len(trace)} events -> {args.output}")
    return 0


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PACER proportional race detection toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list bundled workloads").set_defaults(
        func=cmd_workloads
    )

    p = sub.add_parser("record", help="run a workload and save its trace")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("output")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0, help="hot-loop scale factor")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("analyze", help="run a detector over a trace file")
    p.add_argument("trace")
    p.add_argument("--detector", choices=sorted(DETECTORS), default="fasttrack")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument(
        "--fail-on-race", action="store_true", help="exit 1 if races are found"
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="use the columnar batched fast path (identical results)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="events per batch with --batch",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("oracle", help="exact happens-before ground truth")
    p.add_argument("trace")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=cmd_oracle)

    p = sub.add_parser("detect", help="run a workload live under a detector")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--detector", choices=sorted(DETECTORS), default="pacer")
    p.add_argument(
        "--rate", type=float, default=None, help="PACER sampling rate in percent"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser(
        "matrix", help="run an experiment matrix, optionally in parallel"
    )
    p.add_argument(
        "--workloads", nargs="+", choices=sorted(WORKLOADS),
        default=sorted(WORKLOADS),
    )
    p.add_argument(
        "--detectors", nargs="+", choices=sorted(DETECTOR_FACTORIES),
        default=["fasttrack", "pacer"],
    )
    p.add_argument(
        "--rates", nargs="*", type=float, default=[3.0],
        help="PACER sampling rates in percent (always-on detectors ignore)",
    )
    p.add_argument("--seeds", type=int, default=3, help="trials per cell")
    p.add_argument(
        "--jobs", type=int, default=default_jobs(),
        help="worker processes (default: REPRO_JOBS or 1)",
    )
    p.add_argument("--scale", type=float, default=0.5)
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("convert", help="convert between trace formats")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.set_defaults(func=cmd_convert)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
