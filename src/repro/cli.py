"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``workloads`` — list the bundled synthetic benchmarks.
* ``record``    — run a workload and write its trace to a file.
* ``analyze``   — run a detector over a trace file and report races
  (``--batch`` uses the columnar batched fast path — binary traces are
  then mmap-decoded straight into columns; both modes print events/sec
  and ns/event from the detector's perf counters).
* ``oracle``    — exact happens-before ground truth for a trace file.
* ``explain``   — replay a trace (or a seeded workload) with a flight
  recorder attached and explain every distinct race: happens-before
  witness, sampling attribution, surrounding event context, and (for
  PACER) why each unreported shortest race was discarded.
* ``detect``    — run a workload live under a detector (PACER with a
  sampling rate, or any always-on detector).
* ``profile``   — run a workload live with full observability: metrics
  snapshot (``metrics.json``), virtual-time probe timeline
  (``timeline.jsonl``), and a Chrome-trace/Perfetto profile
  (``profile.trace.json``, loadable in ui.perfetto.dev).
* ``matrix``    — run a (workload × detector × rate × seed) experiment
  matrix, optionally fanned across worker processes with ``--jobs``.
  Fan-out runs under a crash-isolated supervisor: per-trial wall-clock
  timeouts, bounded retries, poison-task quarantine
  (``--quarantine-out``), crash-safe progress journaling
  (``--checkpoint``/``--resume``), and deterministic chaos testing
  (``--fault-plan`` / ``$REPRO_FAULT_PLAN``) — see docs/ROBUSTNESS.md.
* ``verify-trace`` — integrity-check a trace file: structure plus the
  binary format's CRC32 trailer, ``--validate`` for feasibility.
* ``convert``   — convert traces between the text and binary formats.
* ``serve``     — run the race-telemetry server: accepts streamed
  event sessions over TCP/Unix sockets, shards them onto detector
  worker processes, and serves the continuously merged race report
  (see docs/TELEMETRY.md).
* ``stream``    — stream a trace file to a running server as one
  session (through the self-healing ``ResilientClient``:
  reconnect-with-resume, ``--retries``/``--backoff``) and print the
  server's summary.
* ``chaos-proxy`` — deterministic fault-injecting proxy between clients
  and a server (``conn_drop``/``frame_corrupt``/… wire faults from
  ``--fault-plan``), for resilience soaks.
* ``report``    — query a running server's live merged report
  (``--follow`` to poll).
* ``coverage``  — audit detection quality for one run: sync-op-weighted
  effective sampling rate, per-period race attribution, and the
  proportional estimate of the true race count
  (``repro/coverage-report/v1``).

``analyze`` and ``matrix`` accept ``--json`` for machine-readable output
(races + counters + metrics), and ``analyze``/``detect``/``matrix`` all
take ``--metrics-out``/``--trace-out`` (plus ``--timeline-out`` where a
single run produces a timeline), ``--report-out`` for the structured
race report (``repro/race-report/v1``; shard-merged deterministically on
``matrix``), and ``--coverage-out`` for the detection-quality coverage
report (``repro/coverage-report/v1``; on ``matrix`` it carries the
rate-vs-detection curve and the proportionality audit).  Trace file formats are auto-detected (binary traces start
with the ``PACR`` magic); ``--format`` forces one.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .analysis.checkpoint import CheckpointError, CheckpointJournal
from .analysis.parallel import (
    DETECTOR_FACTORIES,
    default_jobs,
    expand_matrix,
    matrix_coverage,
    matrix_report,
    merge_matrix,
    run_matrix,
)
from .analysis.supervisor import (
    MatrixIncompleteError,
    SupervisorConfig,
    run_supervised,
)
from .analysis.tables import render_table
from .core.backend import BACKENDS, DEFAULT_BACKEND
from .core.pacer import PacerDetector
from .core.sampling import BiasCorrectedController
from .obs import (
    FlightRecorder,
    RunObserver,
    SyncIndex,
    build_coverage,
    build_report,
    matrix_trace_events,
    render_coverage,
    render_report_markdown,
    render_report_table,
    write_chrome_trace,
    write_coverage,
    write_report,
)
from .obs.observer import DEFAULT_SAMPLE_EVERY
from .obs.provenance import DEFAULT_WINDOW
from .detectors import (
    Detector,
    DjitPlusDetector,
    EraserDetector,
    FastTrackDetector,
    GenericDetector,
    GoldilocksDetector,
    LiteRaceDetector,
)
from .sim.runtime import Runtime, RuntimeConfig
from .sim.scheduler import run_program
from .sim.workloads import WORKLOADS, build_program, describe_site
from .trace.batch import DEFAULT_BATCH_SIZE
from .trace.binio import (
    MAGIC,
    describe_binary,
    dump_trace_binary,
    load_trace_binary,
    load_trace_columns,
)
from .trace.oracle import HBOracle
from .trace.textio import dump_trace, load_trace
from .trace.trace import Trace, TraceError, TraceFormatError
from .util.faults import FAULT_PLAN_ENV, FaultPlan, FaultPlanError

__all__ = ["main", "DETECTORS"]

DETECTORS: Dict[str, Callable[..., Detector]] = {
    "pacer": PacerDetector,
    "fasttrack": FastTrackDetector,
    "generic": GenericDetector,
    "djit": DjitPlusDetector,
    "goldilocks": GoldilocksDetector,
    "literace": LiteRaceDetector,
    "eraser": EraserDetector,
}


def _load(path: Path, fmt: str) -> Trace:
    if fmt == "auto":
        fmt = "binary" if path.read_bytes()[:4] == MAGIC else "text"
    if fmt == "binary":
        return load_trace_binary(path)
    return load_trace(path)


def _dump(trace, path: Path, fmt: str) -> None:
    if fmt == "auto":
        fmt = "binary" if path.suffix in (".bin", ".pacr") else "text"
    if fmt == "binary":
        dump_trace_binary(trace, path)
    else:
        dump_trace(trace, path)


def _print_races(detector: Detector, limit: int) -> None:
    print(
        f"{detector.name}: {len(detector.races)} race reports, "
        f"{len(detector.distinct_races)} distinct site pairs"
    )
    rows = [
        [r.kind, r.var, f"t{r.first_tid}@{r.first_site}", f"t{r.second_tid}@{r.second_site}", r.index]
        for r in detector.races[:limit]
    ]
    if rows:
        print(render_table(["kind", "var", "first", "second", "at event"], rows))
    if len(detector.races) > limit:
        print(f"... and {len(detector.races) - limit} more (raise --limit)")


# -- observability plumbing ---------------------------------------------------


def _wants_observer(args) -> bool:
    return bool(
        getattr(args, "json", False)
        or getattr(args, "metrics_out", None)
        or getattr(args, "timeline_out", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "report_out", None)
        or getattr(args, "coverage_out", None)
    )


def _make_observer(args) -> Optional[RunObserver]:
    """An observer when any observability output was requested, else None
    (the disabled path: detectors see a single untaken branch).  A race
    report sink additionally attaches a flight recorder, which opts the
    run into per-event context capture."""
    if not _wants_observer(args):
        return None
    recorder = None
    if getattr(args, "report_out", None):
        recorder = FlightRecorder(window=getattr(args, "window", DEFAULT_WINDOW))
    return RunObserver(
        sample_every=getattr(args, "sample_every", None) or DEFAULT_SAMPLE_EVERY,
        recorder=recorder,
    )


def _write_report_output(
    obs: Optional[RunObserver],
    detector: Detector,
    args,
    source: str,
    events: int,
    rate: Optional[float] = None,
    sync: Optional[SyncIndex] = None,
    site_name=None,
    quiet: bool = False,
) -> None:
    """Build and write the structured race report when requested."""
    if not getattr(args, "report_out", None) or obs is None:
        return
    if sync is None and obs.recorder is not None:
        sync = SyncIndex.from_recorder(obs.recorder)
    doc = build_report(
        detector.races,
        source=source,
        detector=detector.name,
        backend=detector.backend_name,
        rate=rate,
        events=events,
        contexts=obs.race_contexts,
        sync=sync,
        site_name=site_name,
    )
    write_report(Path(args.report_out), doc)
    if not quiet:
        print(f"wrote race report to {args.report_out}")


def _write_coverage_output(
    obs: Optional[RunObserver],
    detector: Detector,
    args,
    source: str,
    events: int,
    rate: Optional[float] = None,
    workload: Optional[str] = None,
    quiet: bool = False,
) -> None:
    """Build and write the detection-quality coverage report when requested.

    The document deliberately omits the state backend, so the same run is
    byte-identical across ``--state-backend`` choices (the quality suite
    pins this).
    """
    if not getattr(args, "coverage_out", None):
        return
    doc = build_coverage(
        source=source,
        detector=detector.name,
        workload=workload,
        nominal_rate=rate,
        counters=detector.counters.snapshot(),
        marks=obs.sampling_marks if obs is not None else (),
        races=detector.races,
        events=events,
    )
    write_coverage(Path(args.coverage_out), doc)
    if not quiet:
        print(f"wrote coverage report to {args.coverage_out}")


def _write_obs_outputs(obs: Optional[RunObserver], args, quiet: bool = False) -> None:
    if obs is None:
        return
    if getattr(args, "metrics_out", None):
        obs.write_metrics(Path(args.metrics_out))
        if not quiet:
            print(f"wrote metrics snapshot to {args.metrics_out}")
    if getattr(args, "timeline_out", None):
        obs.write_timeline(Path(args.timeline_out))
        if not quiet:
            print(f"wrote probe timeline to {args.timeline_out}")
    if getattr(args, "trace_out", None):
        obs.write_trace(Path(args.trace_out))
        if not quiet:
            print(
                f"wrote Perfetto trace to {args.trace_out} "
                f"(open in ui.perfetto.dev)"
            )


def _add_obs_arguments(
    p,
    metrics_default: Optional[str] = None,
    timeline_default: Optional[str] = None,
    trace_default: Optional[str] = None,
) -> None:
    """Attach the shared observability flags to a subparser."""
    p.add_argument(
        "--metrics-out", default=metrics_default, metavar="PATH",
        help="write a deterministic metrics snapshot as JSON",
    )
    p.add_argument(
        "--timeline-out", default=timeline_default, metavar="PATH",
        help="write the virtual-time probe timeline as JSONL",
    )
    p.add_argument(
        "--trace-out", default=trace_default, metavar="PATH",
        help="write a Chrome-trace/Perfetto profile (load in ui.perfetto.dev)",
    )
    p.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write a structured race report (repro/race-report/v1 JSON); "
        "attaches a flight recorder for per-race context capture",
    )
    p.add_argument(
        "--coverage-out", default=None, metavar="PATH",
        help="write the detection-quality coverage report "
        "(repro/coverage-report/v1 JSON): effective sampling rate, "
        "race attribution, and estimated true race count",
    )
    p.add_argument(
        "--sample-every", type=int, default=DEFAULT_SAMPLE_EVERY, metavar="N",
        help="virtual-time distance between detector-state probes "
        f"(default {DEFAULT_SAMPLE_EVERY})",
    )


def _add_backend_argument(p) -> None:
    p.add_argument(
        "--state-backend", choices=BACKENDS, default=None,
        help="detector state representation "
        f"(default: $REPRO_STATE_BACKEND or '{DEFAULT_BACKEND}'); "
        "both backends report identical races",
    )


def _race_dict(race) -> Dict:
    return {
        "var": race.var,
        "kind": race.kind,
        "first_tid": race.first_tid,
        "first_clock": race.first_clock,
        "first_site": race.first_site,
        "second_tid": race.second_tid,
        "second_site": race.second_site,
        "index": race.index,
        "first_index": race.first_index,
    }


def _perf_dict(perf) -> Dict:
    return {
        "events": perf.events,
        "elapsed_ns": perf.elapsed_ns,
        "batches": perf.batches,
        "max_batch": perf.max_batch,
        "events_per_sec": round(perf.events_per_sec, 1),
        "ns_per_event": round(perf.ns_per_event, 1),
    }


def _print_json(doc: Dict) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


# -- commands -----------------------------------------------------------------


def cmd_workloads(_args) -> int:
    rows = [
        [name, spec.threads_total, spec.max_live, len(spec.racy_sites), spec.iterations]
        for name, spec in sorted(WORKLOADS.items())
    ]
    print(
        render_table(
            ["workload", "threads", "max live", "injected races", "hot iterations"],
            rows,
        )
    )
    return 0


def cmd_record(args) -> int:
    spec = WORKLOADS[args.workload].scaled(args.scale)
    trace = run_program(build_program(spec, args.seed), seed=args.seed)
    _dump(trace, Path(args.output), args.format)
    print(f"wrote {len(trace)} events to {args.output}")
    return 0


def cmd_analyze(args) -> int:
    path = Path(args.trace)
    fmt = args.format
    if fmt == "auto":
        fmt = "binary" if path.read_bytes()[:4] == MAGIC else "text"
    trace = None
    columns = None
    if args.batch and fmt == "binary" and not args.report_out:
        # zero-copy fast path: mmap the file and decode the wire format
        # straight into EventBatch columns (report witnesses need the
        # in-memory sync index, so --report-out takes the scalar load)
        columns = load_trace_columns(path)
    else:
        trace = _load(path, fmt)
    detector = DETECTORS[args.detector](backend=args.state_backend)
    obs = _make_observer(args)
    if obs is not None:
        obs.attach(detector)
    if args.batch:
        detector.run_batch(columns if columns is not None else trace,
                           batch_size=args.batch_size)
    else:
        detector.run(trace)
    if obs is not None:
        obs.finalize(detector)
    # the whole trace is in memory, so witnesses come from the exact sync
    # index rather than the bounded flight-recorder window
    _write_report_output(
        obs, detector, args, "analyze", detector.perf.events,
        sync=SyncIndex.from_trace(trace) if args.report_out else None,
        quiet=args.json,
    )
    _write_coverage_output(
        obs, detector, args, "analyze", detector.perf.events, quiet=args.json
    )
    if args.json:
        _print_json(
            {
                "command": "analyze",
                "trace": args.trace,
                "detector": detector.name,
                "events": detector.perf.events,
                "races": [_race_dict(r) for r in detector.races],
                "distinct_races": sorted(detector.distinct_races),
                "counters": detector.counters.snapshot(),
                "metrics": obs.registry.snapshot() if obs is not None else None,
                "perf": _perf_dict(detector.perf),
            }
        )
        _write_obs_outputs(obs, args, quiet=True)
    else:
        print(f"perf: {detector.perf.summary()}")
        _print_races(detector, args.limit)
        _write_obs_outputs(obs, args)
    return 1 if detector.races and args.fail_on_race else 0


def cmd_oracle(args) -> int:
    trace = _load(Path(args.trace), args.format)
    oracle = HBOracle(trace)
    races = oracle.all_races()
    print(
        f"{len(trace)} events, {len(oracle.accesses)} accesses, "
        f"{len(races)} racing pairs on {len(oracle.racy_variables())} variables"
    )
    rows = [
        [r.kind, r.first.var, f"t{r.first.tid}@{r.first.site}",
         f"t{r.second.tid}@{r.second.site}", r.first.index, r.second.index]
        for r in races[: args.limit]
    ]
    if rows:
        print(render_table(["kind", "var", "first", "second", "i", "j"], rows))
    return 0


def cmd_detect(args) -> int:
    spec = WORKLOADS[args.workload].scaled(args.scale)
    detector = DETECTORS[args.detector](backend=args.state_backend)
    controller = None
    if args.rate is not None:
        if args.detector != "pacer":
            print("--rate only applies to the pacer detector", file=sys.stderr)
            return 2
        controller = BiasCorrectedController(
            args.rate / 100.0, rng=random.Random(args.seed)
        )
    obs = _make_observer(args)
    runtime = Runtime(
        build_program(spec, args.seed),
        detector,
        controller=controller,
        config=RuntimeConfig(track_memory=False),
        seed=args.seed,
        observer=obs,
    )
    runtime.run()
    if controller is not None:
        print(f"effective sampling rate: {runtime.effective_sampling_rate:.2%}")
    _print_races(detector, args.limit)
    _write_obs_outputs(obs, args)
    _write_report_output(
        obs, detector, args, "detect", runtime.events,
        rate=None if args.rate is None else args.rate / 100.0,
        site_name=describe_site,
    )
    _write_coverage_output(
        obs, detector, args, "detect", runtime.events,
        rate=None if args.rate is None else args.rate / 100.0,
        workload=args.workload,
    )
    return 0


def cmd_profile(args) -> int:
    """Run a workload live with full observability and write all sinks."""
    spec = WORKLOADS[args.workload].scaled(args.scale)
    detector = DETECTORS[args.detector](backend=args.state_backend)
    controller = None
    if args.detector == "pacer":
        rate = 10.0 if args.rate is None else args.rate
        controller = BiasCorrectedController(
            rate / 100.0, rng=random.Random(args.seed)
        )
    elif args.rate is not None:
        print("--rate only applies to the pacer detector", file=sys.stderr)
        return 2
    obs = RunObserver(sample_every=args.sample_every)
    runtime = Runtime(
        build_program(spec, args.seed),
        detector,
        controller=controller,
        config=RuntimeConfig(),
        seed=args.seed,
        observer=obs,
    )
    runtime.run()
    periods = obs.sampling_periods()
    sampled_vt = sum(end - begin for begin, end in periods)
    print(
        f"{detector.name} on {args.workload}: {runtime.events} events, "
        f"{len(detector.races)} race reports "
        f"({len(detector.distinct_races)} distinct)"
    )
    if controller is not None:
        print(
            f"sampling: {len(periods)} periods covering {sampled_vt} of "
            f"{runtime.events} events "
            f"(effective rate {runtime.effective_sampling_rate:.2%})"
        )
    print(
        f"probes: {len(obs.timeline)} timeline samples, "
        f"{len(runtime.gc_log)} GC boundaries, "
        f"{runtime.context_switches} context switches"
    )
    _write_obs_outputs(obs, args)
    _write_report_output(
        obs, detector, args, "profile", runtime.events,
        rate=None if controller is None else controller.rate,
        site_name=describe_site,
    )
    _write_coverage_output(
        obs, detector, args, "profile", runtime.events,
        rate=None if controller is None else controller.rate,
        workload=args.workload,
    )
    return 0


def _quarantine_summary(doc: Dict) -> List[str]:
    """Human lines for the quarantine section of a matrix run."""
    lines = [
        f"QUARANTINED {len(doc['quarantined'])} of {doc['total_tasks']} "
        f"trial(s) after exhausting retries:"
    ]
    for entry in doc["quarantined"]:
        kinds: Dict[str, int] = {}
        for failure in entry["failures"]:
            kinds[failure["kind"]] = kinds.get(failure["kind"], 0) + 1
        history = ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
        rate = "-" if entry["rate"] is None else f"{entry['rate']:.0%}"
        lines.append(
            f"  #{entry['index']} {entry['workload']}/{entry['detector']} "
            f"rate {rate} seed {entry['seed']}: "
            f"{entry['attempts']} attempts ({history})"
        )
    return lines


def cmd_matrix(args) -> int:
    rates = [r / 100.0 for r in args.rates] if args.rates else [None]
    tasks = expand_matrix(
        workloads=args.workloads,
        detectors=args.detectors,
        rates=rates,
        seeds=range(args.seeds),
        scale=args.scale,
        backend=args.state_backend,
    )

    fault_plan = None
    fault_text = args.fault_plan or os.environ.get(FAULT_PLAN_ENV, "")
    if fault_text.strip():
        try:
            fault_plan = FaultPlan.parse(fault_text)
        except FaultPlanError as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2

    journal = completed = None
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.checkpoint:
        path = Path(args.checkpoint)
        try:
            if args.resume and path.exists():
                journal = CheckpointJournal.resume(path, tasks)
                completed = dict(journal.completed)
                if not args.json:
                    print(
                        f"resuming from {path}: {len(completed)} of "
                        f"{len(tasks)} trial(s) already journaled"
                    )
            else:
                journal = CheckpointJournal.create(path, tasks)
        except CheckpointError as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 2

    quarantine_doc = None
    supervised = args.jobs > 1 or fault_plan is not None or journal is not None
    if supervised:
        config = SupervisorConfig(
            jobs=max(1, args.jobs),
            task_timeout=args.task_timeout if args.task_timeout > 0 else None,
            max_attempts=args.max_attempts,
            quarantine=not args.no_quarantine,
            fault_plan=fault_plan,
        )
        on_result = journal.record if journal is not None else None
        try:
            outcome = run_supervised(
                tasks, config, completed=completed, on_result=on_result
            )
        except MatrixIncompleteError as exc:
            print(f"matrix failed: {exc}", file=sys.stderr)
            return 1
        pairs = outcome.surviving_pairs(tasks)
        quarantine_doc = outcome.quarantine_doc()
    else:
        results = run_matrix(tasks, jobs=args.jobs)
        pairs = list(zip(tasks, results))

    live_tasks = [task for task, _ in pairs]
    live_results = [stats for _, stats in pairs]
    merged = merge_matrix(live_tasks, live_results)

    if args.quarantine_out:
        doc = quarantine_doc or {
            "schema": "repro/quarantine/v1",
            "total_tasks": len(tasks),
            "completed": len(pairs),
            "quarantined": [],
            "counters": {},
        }
        with open(args.quarantine_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not args.json:
            print(f"wrote quarantine report to {args.quarantine_out}")
    if args.metrics_out:
        _write_matrix_metrics(Path(args.metrics_out), merged)
        if not args.json:
            print(f"wrote merged metrics snapshot to {args.metrics_out}")
    if args.report_out:
        write_report(Path(args.report_out), matrix_report(live_tasks, live_results))
        if not args.json:
            print(f"wrote merged race report to {args.report_out}")
    if args.coverage_out:
        write_coverage(
            Path(args.coverage_out), matrix_coverage(live_tasks, live_results)
        )
        if not args.json:
            print(f"wrote matrix coverage report to {args.coverage_out}")
    if args.trace_out:
        write_chrome_trace(
            Path(args.trace_out), matrix_trace_events(pairs)
        )
        if not args.json:
            print(
                f"wrote matrix coverage trace to {args.trace_out} "
                f"(open in ui.perfetto.dev)"
            )
    if args.json:
        cells = []
        for (workload, detector, rate), stats in sorted(merged.items(), key=str):
            cells.append(
                {
                    "workload": workload,
                    "detector": detector,
                    "rate": rate,
                    "events": stats.events,
                    "races": stats.races,
                    "distinct_races": stats.distinct_races,
                    "effective_rate": round(stats.effective_rate, 6),
                    "counters": stats.counters,
                    "metrics": stats.metrics,
                    "perf": _perf_dict(stats.perf),
                }
            )
        _print_json(
            {
                "command": "matrix",
                "trials": len(tasks),
                "completed": len(pairs),
                "jobs": args.jobs,
                "cells": cells,
                "quarantine": quarantine_doc,
            }
        )
        return 0
    rows = []
    for (workload, detector, rate), stats in sorted(merged.items(), key=str):
        rows.append(
            [
                workload,
                detector,
                "-" if rate is None else f"{rate:.0%}",
                stats.events,
                stats.races,
                stats.distinct_races,
                f"{stats.effective_rate:.2%}",
                f"{stats.perf.events_per_sec:,.0f}",
            ]
        )
    print(
        render_table(
            ["workload", "detector", "rate", "events", "races",
             "distinct", "eff rate", "events/s"],
            rows,
        )
    )
    print(
        f"{len(tasks)} trials over {args.jobs} job(s); "
        f"per-trial results are independent of --jobs"
    )
    if quarantine_doc and quarantine_doc["quarantined"]:
        for line in _quarantine_summary(quarantine_doc):
            print(line)
    return 0


def _write_matrix_metrics(path: Path, merged) -> None:
    """Write the merged per-cell metrics as deterministic JSON.

    Only trace-determined values appear (``CoreStats.metrics``,
    counters, race counts — never wall-clock perf), so the file is
    byte-identical for any ``--jobs`` value; the obs test suite pins
    this.
    """
    cells = {}
    for (workload, detector, rate), stats in merged.items():
        key = f"{workload}/{detector}/{'-' if rate is None else rate}"
        cells[key] = {
            "events": stats.events,
            "races": stats.races,
            "distinct_races": stats.distinct_races,
            "effective_rate": round(stats.effective_rate, 9),
            "counters": stats.counters,
            "metrics": stats.metrics,
        }
    doc = {"command": "matrix", "cells": cells}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _pacer_discard_attribution(trace, detector, sync: SyncIndex, cap: int = 50) -> List[Dict]:
    """Why each unreported shortest race was discarded (PACER only).

    Compares the happens-before oracle's *reportable* races — the pairs a
    precise always-on detector reports — against PACER's actual reports.
    PACER's guarantee is that a race is reported iff its first access
    falls in a sampling period; the attribution names the period (or its
    absence) for every miss.
    """
    reported = {(r.var, r.index) for r in detector.races}
    out: List[Dict] = []
    for pair in HBOracle(trace).reportable_races():
        key = (pair.first.var, pair.second.index)
        if key in reported:
            continue
        period = sync.period_of(pair.first.index)
        if period is None:
            reason = (
                f"first access (vt {pair.first.index}) fell outside every "
                f"sampling period — discarded per the paper's Table 4 rules"
            )
        else:
            reason = (
                f"first access was inside sampling period {period} yet the "
                f"race went unreported — unexpected for PACER; check the "
                f"detector"
            )
        out.append(
            {
                "kind": pair.kind,
                "var": pair.first.var,
                "first_vt": pair.first.index,
                "second_vt": pair.second.index,
                "first_site": pair.first.site,
                "second_site": pair.second.site,
                "first_tid": pair.first.tid,
                "second_tid": pair.second.tid,
                "reason": reason,
            }
        )
        if len(out) >= cap:
            break
    return out


def cmd_explain(args) -> int:
    """Replay a trace (or a seeded workload) and explain each race."""
    path = Path(args.trace)
    site_resolver = None
    if path.exists():
        trace = _load(path, args.format)
    elif args.trace in WORKLOADS:
        spec = WORKLOADS[args.trace].scaled(args.scale)
        trace = run_program(build_program(spec, args.seed), seed=args.seed)
        site_resolver = describe_site
    else:
        print(
            f"{args.trace!r} is neither a trace file nor a workload "
            f"(choices: {', '.join(sorted(WORKLOADS))})",
            file=sys.stderr,
        )
        return 2
    detector = DETECTORS[args.detector](backend=args.state_backend)
    recorder = FlightRecorder(window=args.window)
    obs = RunObserver(
        sample_every=args.sample_every or DEFAULT_SAMPLE_EVERY, recorder=recorder
    )
    obs.attach(detector)
    detector.run(trace)
    obs.finalize(detector)
    sync = SyncIndex.from_trace(trace)
    discarded = None
    if args.detector == "pacer":
        discarded = _pacer_discard_attribution(trace, detector, sync)
    doc = build_report(
        detector.races,
        source="explain",
        detector=detector.name,
        backend=detector.backend_name,
        rate=None,
        events=len(trace),
        contexts=obs.race_contexts,
        sync=sync,
        site_name=site_resolver,
        discarded=discarded,
    )
    if args.report_out:
        write_report(Path(args.report_out), doc)
    if args.markdown_out:
        with open(args.markdown_out, "w", encoding="utf-8") as fh:
            fh.write(render_report_markdown(doc, limit=args.races))
    if args.trace_out:
        obs.write_trace(Path(args.trace_out))
    if args.json:
        _print_json(doc)
        return 0
    print(render_report_table(doc, limit=args.limit))
    for n, race in enumerate(doc["races"][: args.races], start=1):
        witness = race.get("witness")
        if witness is None:
            continue
        first = race.get("first_site_name") or race["first_site"]
        second = race.get("second_site_name") or race["second_site"]
        print(f"\nrace {n}: {first} x {second} [{'+'.join(race['kinds'])}]")
        print(f"  {witness['verdict']}: {witness['summary']}")
        sampling = witness.get("sampling")
        if sampling:
            print(
                f"  sampling: first access in period {sampling['first_period']}, "
                f"second in {sampling['second_period']} "
                f"(of {sampling['n_periods']})"
            )
        context = race.get("context") or {}
        for side, label in ((context.get("first"), "first"),
                            (context.get("second"), "second")):
            if not side:
                continue
            mark = "" if side.get("complete") else " (window truncated)"
            print(f"  {label} access context — t{side['tid']}{mark}:")
            for ev in side["events"]:
                print(
                    f"    vt {ev['vt']:>6}  {ev['kind']:<7} "
                    f"target={ev['target']} site={ev['site']}"
                )
    if discarded:
        print(f"\n{len(discarded)} shortest race(s) went unreported:")
        for entry in discarded[: args.races]:
            print(
                f"  [{entry['kind']}] var {entry['var']} "
                f"vt {entry['first_vt']} vs {entry['second_vt']}: "
                f"{entry['reason']}"
            )
    for out, label in (
        (args.report_out, "race report"),
        (args.markdown_out, "Markdown report"),
        (args.trace_out, "Perfetto trace"),
    ):
        if out:
            print(f"wrote {label} to {out}")
    return 0


def cmd_coverage(args) -> int:
    """Audit detection quality for one run (``repro coverage``).

    Accepts either a trace file (replayed through the detector) or a
    workload name (run live, seeded — the live path is the only one that
    exercises PACER sampling periods).  Prints the rendered
    ``repro/coverage-report/v1`` summary; ``--out`` writes the JSON
    document, ``--json`` prints it instead of the rendering.
    """
    path = Path(args.trace)
    detector = DETECTORS[args.detector](backend=args.state_backend)
    obs = RunObserver(sample_every=DEFAULT_SAMPLE_EVERY)
    rate = None
    workload = None
    if path.exists():
        if args.rate is not None:
            print("--rate only applies to live workload runs", file=sys.stderr)
            return 2
        trace = _load(path, args.format)
        obs.attach(detector)
        detector.run(trace)
        obs.finalize(detector)
        events = detector.perf.events
    elif args.trace in WORKLOADS:
        workload = args.trace
        spec = WORKLOADS[args.trace].scaled(args.scale)
        controller = None
        if args.detector == "pacer":
            rate = (10.0 if args.rate is None else args.rate) / 100.0
            controller = BiasCorrectedController(
                rate, rng=random.Random(args.seed)
            )
        elif args.rate is not None:
            print("--rate only applies to the pacer detector", file=sys.stderr)
            return 2
        runtime = Runtime(
            build_program(spec, args.seed),
            detector,
            controller=controller,
            config=RuntimeConfig(track_memory=False),
            seed=args.seed,
            observer=obs,
        )
        runtime.run()
        events = runtime.events
    else:
        print(
            f"{args.trace!r} is neither a trace file nor a workload "
            f"(choices: {', '.join(sorted(WORKLOADS))})",
            file=sys.stderr,
        )
        return 2
    doc = build_coverage(
        source="coverage",
        detector=detector.name,
        workload=workload,
        nominal_rate=rate,
        counters=detector.counters.snapshot(),
        marks=obs.sampling_marks,
        races=detector.races,
        events=events,
    )
    if args.out:
        write_coverage(Path(args.out), doc)
    if args.json:
        _print_json(doc)
        return 0
    print(render_coverage(doc))
    if args.out:
        print(f"wrote coverage report to {args.out}")
    return 0


def cmd_convert(args) -> int:
    trace = _load(Path(args.input), "auto")
    _dump(trace, Path(args.output), args.format)
    print(f"converted {len(trace)} events -> {args.output}")
    return 0


def cmd_verify_trace(args) -> int:
    """Integrity-check a trace file without analyzing it.

    Binary traces get the full structural walk plus the v2 CRC32
    trailer check; text traces are parsed line by line.  ``--validate``
    additionally checks trace feasibility (fork-before-run etc.).
    Exit 0 on a sound file, 1 on any integrity failure.
    """
    path = Path(args.trace)
    try:
        data = path.read_bytes()
    except OSError as exc:
        print(f"FAIL {path}: {exc}", file=sys.stderr)
        return 1
    try:
        if data[:4] == MAGIC:
            info = describe_binary(data, validate=args.validate)
        else:
            trace = load_trace(path)
            if args.validate:
                trace.validate()
            info = {
                "format": "text",
                "version": None,
                "events": len(trace),
                "bytes": len(data),
                "crc32": None,
                "checksummed": False,
            }
    except (TraceFormatError, TraceError) as exc:
        if args.json:
            _print_json({"command": "verify-trace", "trace": str(path),
                         "ok": False, "error": str(exc)})
        else:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
        return 1
    info["validated"] = bool(args.validate)
    if args.json:
        _print_json({"command": "verify-trace", "trace": str(path),
                     "ok": True, **info})
    else:
        version = "text" if info["version"] is None else f"v{info['version']}"
        crc = f", crc32 {info['crc32']} OK" if info["checksummed"] else ""
        feasible = ", feasible" if args.validate else ""
        print(
            f"OK {path}: {info['events']} events, {version}, "
            f"{info['bytes']} bytes{crc}{feasible}"
        )
    return 0


def cmd_serve(args) -> int:
    """Run the race-telemetry server until SIGTERM/^C (or ``--duration``).

    Shutdown is always a *graceful drain*: stop accepting, wait for
    in-flight chunks, flush spools plus a session manifest, then write
    the final status/trace/metrics artifacts.  A restarted server
    pointed at the same ``--spool-dir`` re-adopts the drained sessions
    so resuming clients lose nothing.
    """
    import signal
    import threading

    from .net import ServerConfig, TelemetryServer

    config = ServerConfig(
        address=args.address,
        n_shards=args.shards,
        shard_mode=args.shard_mode,
        credits=args.credits,
        max_sessions=args.max_sessions,
        spool_dir=args.spool_dir,
        log_path=args.log_out,
        http=args.http,
        spool_quota_bytes=args.spool_quota,
        memory_watermark_bytes=args.memory_watermark,
        slow_client_timeout=args.slow_client_timeout,
        drain_timeout=args.drain_timeout,
    )
    server = TelemetryServer(config)
    server.start()
    # the bound address (port 0 resolves on bind) for scripted clients
    if args.address_file:
        Path(args.address_file).write_text(server.address + "\n", encoding="utf-8")
    print(f"serving {server.address} "
          f"({args.shards} {args.shard_mode} shard(s), "
          f"{args.credits}-chunk credit window)", flush=True)
    if server.http_address:
        print(f"observability http on {server.http_address} "
              "(/metrics /status /healthz)", flush=True)
    if server.adopted_sessions:
        print(f"re-adopted {server.adopted_sessions} spooled session(s)",
              flush=True)

    # SIGTERM/SIGINT trip the event instead of killing the process, so
    # shutdown always goes through drain(): no accepted chunk is lost
    stop_event = threading.Event()
    old_handlers = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            old_handlers[signum] = signal.signal(
                signum, lambda *_: stop_event.set()
            )
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        try:
            stop_event.wait(timeout=args.duration)
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
    finally:
        for signum, handler in old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        drained = server.drain()
        print(
            f"drained in {drained['seconds']:.3f}s "
            f"({drained['drained']} session(s), "
            f"{drained['evicted']} evicted)", flush=True,
        )
        doc = server.query_doc()
        if args.status_out:
            with open(args.status_out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, indent=2)
                fh.write("\n")
        # the merged service trace needs live shards: write before stop()
        if args.trace_out:
            server.write_trace(args.trace_out)
        server.stop()
        # stop() finalizes every session, so the metrics fold is complete
        if args.metrics_out:
            server.write_metrics(args.metrics_out)
    report = doc["report"]
    print(
        f"served {len(doc['sessions'])} session(s): {report['events']} events, "
        f"{report['dynamic_races']} race(s), {report['distinct_races']} distinct"
    )
    return 0


def cmd_stream(args) -> int:
    """Stream a trace file to a telemetry server as one session.

    Streams through :class:`~repro.net.ResilientClient`, so transient
    connection loss, corrupted frames, and BUSY pushback are absorbed by
    reconnect-with-resume inside the ``--retries`` budget.
    """
    from .net import ResilientClient

    trace = _load(Path(args.trace), args.format)
    client = ResilientClient(
        args.address,
        args.session,
        detector=args.detector,
        backend=args.state_backend,
        chunk_size=args.chunk_size,
        retries=args.retries,
        backoff_base=args.backoff,
    )
    client.connect()
    client.send_events(list(trace.events))
    summary = client.close()
    if args.json:
        _print_json(
            {
                "command": "stream",
                "trace": args.trace,
                "address": args.address,
                "credit_waits": client.credit_waits,
                "retries": client.retry_count,
                **summary,
            }
        )
    elif not summary:
        # close() exhausted its retry budget without a server summary;
        # every acked chunk is still durable server-side for a resume
        print(
            f"stream interrupted after {client.events_sent} event(s); "
            f"server summary unavailable ({client.retry_count} retries)",
            file=sys.stderr,
        )
        return 1
    else:
        retried = (
            f" ({client.retry_count} reconnect(s))" if client.retry_count
            else ""
        )
        print(
            f"streamed {summary['events']} events in {summary['chunks']} "
            f"chunk(s) as session {summary['session']!r}: "
            f"{summary['races']} race(s), "
            f"{summary['distinct_races']} distinct{retried}"
        )
    return 1 if summary.get("races") and args.fail_on_race else 0


def cmd_chaos_proxy(args) -> int:
    """Run a deterministic fault-injecting proxy in front of a server.

    Sits between telemetry clients and a running ``repro serve``
    instance and injects wire faults from ``--fault-plan`` (or
    ``$REPRO_FAULT_PLAN``) — the CI chaos soak points clients here and
    asserts the merged report is byte-identical to an offline analyze.
    """
    import time

    from .net.chaos import ChaosProxy, wire_plan

    plan = None
    fault_text = args.fault_plan or os.environ.get(FAULT_PLAN_ENV, "")
    if fault_text.strip():
        try:
            plan = wire_plan(fault_text)
        except FaultPlanError as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    proxy = ChaosProxy(
        args.listen,
        args.upstream,
        plan=plan,
        seed=args.seed,
        stall_seconds=args.stall_seconds,
    )
    proxy.start()
    if args.address_file:
        Path(args.address_file).write_text(proxy.address + "\n", encoding="utf-8")
    spec = proxy.plan_spec() or "<transparent>"
    print(f"chaos proxy {proxy.address} -> {args.upstream} "
          f"(plan {spec!r}, seed {args.seed})", flush=True)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        proxy.stop()
    stats = dict(proxy.stats)
    if args.json:
        _print_json({
            "command": "chaos-proxy",
            "listen": proxy.address,
            "upstream": args.upstream,
            "plan": proxy.plan_spec(),
            "seed": args.seed,
            "fired": proxy.fired(),
            "stats": stats,
        })
    else:
        print(
            f"proxied {stats['connections']} connection(s), "
            f"{stats['frames']} frame(s); {proxy.fired()} fault(s) fired"
        )
    return 0


def cmd_net_report(args) -> int:
    """Query a telemetry server's live merged report (optionally follow)."""
    import time

    from .net import query_server

    want_trace = bool(args.trace_out)
    while True:
        doc = query_server(args.address, trace=want_trace)
        if args.report_out:
            write_report(Path(args.report_out), doc["report"])
        if args.metrics_out:
            # round-trip through a registry for the canonical byte format
            from .obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.merge_snapshot(doc.get("metrics", {}))
            registry.write_json(args.metrics_out)
        if args.trace_out:
            if doc.get("trace_truncated"):
                print(
                    "warning: service trace exceeded the frame limit; "
                    "use `repro serve --trace-out` instead",
                    file=sys.stderr,
                )
            elif "trace" in doc:
                with open(args.trace_out, "w", encoding="utf-8") as fh:
                    json.dump(doc["trace"], fh, sort_keys=True)
                    fh.write("\n")
        if args.prom:
            from .obs.prom import render_prometheus

            print(render_prometheus(doc.get("metrics", {})), end="")
        elif args.json:
            _print_json(doc)
        else:
            report = doc["report"]
            print(
                f"{args.address}: {len(doc['sessions'])} session(s), "
                f"{report['events']} events, {report['dynamic_races']} "
                f"race(s), {report['distinct_races']} distinct"
            )
            for sess in doc["sessions"]:
                print(
                    f"  {sess['session']:<24} {sess['state']:<9} "
                    f"shard {sess['shard']}  seq {sess['applied_seq']:<6} "
                    f"{sess['events']:>8} events  {sess['races']:>4} race(s)"
                )
        if not args.follow:
            return 0
        time.sleep(args.interval)


def cmd_top(args) -> int:
    """Live operator console over a telemetry server (``repro top``)."""
    import time

    from .net import build_top_status, query_server, render_top

    if args.once:
        status = build_top_status(query_server(args.address))
        if args.json:
            _print_json(status)
        else:
            print(render_top(status), end="")
        return 0
    prev = None
    try:
        while True:  # pragma: no cover - interactive path
            started = time.monotonic()
            status = build_top_status(
                query_server(args.address),
                prev=prev,
                interval=args.interval if prev is not None else None,
            )
            if args.json:
                _print_json(status)
            else:
                # clear screen + home, like watch(1)
                print("\x1b[2J\x1b[H" + render_top(status), end="", flush=True)
            prev = status
            time.sleep(max(args.interval - (time.monotonic() - started), 0.05))
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def cmd_bench(args) -> int:
    """Run the core-operations benchmark (``repro bench``).

    Replays the benchmark workload through every available state
    backend, writes ``BENCH_core.json``, and appends the timestamped
    result to ``BENCH_history.jsonl`` next to it.
    """
    from .bench import check_gates, emit_json

    code = emit_json(
        args.out, size=args.size, repeats=args.repeats,
        gate_size=args.gate_size, gate_rounds=args.gate_rounds,
    )
    if code == 0 and args.check:
        code = check_gates(args.out)
    return code


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PACER proportional race detection toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list bundled workloads").set_defaults(
        func=cmd_workloads
    )

    p = sub.add_parser("record", help="run a workload and save its trace")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("output")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0, help="hot-loop scale factor")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("analyze", help="run a detector over a trace file")
    p.add_argument("trace")
    p.add_argument("--detector", choices=sorted(DETECTORS), default="fasttrack")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument(
        "--fail-on-race", action="store_true", help="exit 1 if races are found"
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="use the columnar batched fast path (identical results)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="events per batch with --batch",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable output: races + counters + metrics",
    )
    _add_backend_argument(p)
    _add_obs_arguments(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "explain",
        help="replay a trace (or workload) and explain each race with a "
        "happens-before witness and flight-recorder context",
    )
    p.add_argument(
        "trace",
        help="a trace file, or a workload name to generate one (seeded)",
    )
    p.add_argument("--detector", choices=sorted(DETECTORS), default="fasttrack")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument("--seed", type=int, default=0, help="workload trial seed")
    p.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    p.add_argument(
        "--races", type=int, default=5, metavar="N",
        help="number of distinct races to detail (default 5)",
    )
    p.add_argument("--limit", type=int, default=20, help="table rows")
    p.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW, metavar="N",
        help=f"flight-recorder events kept per thread (default {DEFAULT_WINDOW})",
    )
    p.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the structured race report (repro/race-report/v1 JSON)",
    )
    p.add_argument(
        "--markdown-out", default=None, metavar="PATH",
        help="write the report rendered as Markdown",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto trace with race flow arrows "
        "(open in ui.perfetto.dev)",
    )
    p.add_argument(
        "--sample-every", type=int, default=DEFAULT_SAMPLE_EVERY, metavar="N",
        help="probe cadence for the bundled Perfetto trace",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the report document instead of tables",
    )
    _add_backend_argument(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("oracle", help="exact happens-before ground truth")
    p.add_argument("trace")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=cmd_oracle)

    p = sub.add_parser("detect", help="run a workload live under a detector")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--detector", choices=sorted(DETECTORS), default="pacer")
    p.add_argument(
        "--rate", type=float, default=None, help="PACER sampling rate in percent"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--limit", type=int, default=20)
    _add_backend_argument(p)
    _add_obs_arguments(p)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser(
        "profile",
        help="run a workload with full observability (metrics, timeline, "
        "Perfetto trace)",
    )
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--detector", choices=sorted(DETECTORS), default="pacer")
    p.add_argument(
        "--rate", type=float, default=None,
        help="PACER sampling rate in percent (default 10 for pacer)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0)
    _add_backend_argument(p)
    _add_obs_arguments(
        p,
        metrics_default="metrics.json",
        timeline_default="timeline.jsonl",
        trace_default="profile.trace.json",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "matrix", help="run an experiment matrix, optionally in parallel"
    )
    p.add_argument(
        "--workloads", nargs="+", choices=sorted(WORKLOADS),
        default=sorted(WORKLOADS),
    )
    p.add_argument(
        "--detectors", nargs="+", choices=sorted(DETECTOR_FACTORIES),
        default=["fasttrack", "pacer"],
    )
    p.add_argument(
        "--rates", nargs="*", type=float, default=[3.0],
        help="PACER sampling rates in percent (always-on detectors ignore)",
    )
    p.add_argument("--seeds", type=int, default=3, help="trials per cell")
    p.add_argument(
        "--jobs", type=int, default=default_jobs(),
        help="worker processes (default: REPRO_JOBS or 1)",
    )
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable output: per-cell races + counters + metrics",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the merged, jobs-independent metrics snapshot as JSON",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto coverage trace of the matrix (one span per trial)",
    )
    p.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the merged, jobs-independent race report as JSON",
    )
    p.add_argument(
        "--coverage-out", default=None, metavar="PATH",
        help="write the merged detection-quality coverage report "
        "(repro/coverage-report/v1) with the rate-vs-detection curve "
        "and per-cell proportionality audit",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal every completed trial to PATH (append-only JSONL "
        "with per-record CRCs, written via atomic rename)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="replay the --checkpoint journal and run only the remaining "
        "trials; rejects a journal written for a different matrix",
    )
    p.add_argument(
        "--task-timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-trial wall-clock budget under supervision; a trial past "
        "it is killed and retried (default 300; 0 disables)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3, metavar="K",
        help="tries per trial before quarantine (default 3)",
    )
    p.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="deterministic fault-injection plan for chaos testing "
        f"(grammar in docs/ROBUSTNESS.md; default: ${FAULT_PLAN_ENV})",
    )
    p.add_argument(
        "--quarantine-out", default=None, metavar="PATH",
        help="write the structured quarantine report "
        "(repro/quarantine/v1 JSON; empty when nothing failed)",
    )
    p.add_argument(
        "--no-quarantine", action="store_true",
        help="strict mode: abort (naming the dropped trials) instead of "
        "quarantining tasks that exhaust their retries",
    )
    _add_backend_argument(p)
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser(
        "verify-trace",
        help="integrity-check a trace file (structure + CRC32 trailer)",
    )
    p.add_argument("trace")
    p.add_argument(
        "--validate", action="store_true",
        help="also check trace feasibility, not just encoding integrity",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable verification verdict",
    )
    p.set_defaults(func=cmd_verify_trace)

    p = sub.add_parser("serve", help="run the race-telemetry server")
    p.add_argument(
        "--address", default="tcp://127.0.0.1:0",
        help="tcp://host:port or unix:///path (port 0 picks a free port)",
    )
    p.add_argument(
        "--address-file",
        help="write the bound address here (for scripted clients)",
    )
    p.add_argument("--shards", type=int, default=2, help="detector workers")
    p.add_argument(
        "--shard-mode", choices=["process", "inline"], default="process",
        help="worker processes, or in-process shards (tests/debugging)",
    )
    p.add_argument(
        "--credits", type=int, default=8,
        help="per-session credit window (chunks in flight)",
    )
    p.add_argument("--max-sessions", type=int, default=64)
    p.add_argument(
        "--spool-dir",
        help="session spool directory (default: private tempdir)",
    )
    p.add_argument("--log-out", help="append server log lines to this file")
    p.add_argument(
        "--status-out",
        help="write the final status document (JSON) on shutdown",
    )
    p.add_argument(
        "--duration", type=float, default=None,
        help="serve for N seconds then exit (default: until ^C)",
    )
    p.add_argument(
        "--http", metavar="HOST:PORT",
        help="expose /metrics (Prometheus), /status, /healthz over HTTP "
        "(port 0 picks a free port)",
    )
    p.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the final mergeable metrics snapshot (JSON) on shutdown",
    )
    p.add_argument(
        "--trace-out", metavar="PATH",
        help="write the merged service Perfetto trace on shutdown",
    )
    p.add_argument(
        "--spool-quota", type=int, default=None, metavar="BYTES",
        help="per-session spool disk quota; sessions over it are evicted "
        "(resumable after the server restarts or sheds load)",
    )
    p.add_argument(
        "--memory-watermark", type=int, default=None, metavar="BYTES",
        help="aggregate spool watermark: above it new sessions get BUSY "
        "and credit grants are throttled",
    )
    p.add_argument(
        "--slow-client-timeout", type=float, default=None, metavar="SECONDS",
        help="evict attached sessions idle longer than this",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-drain wait for in-flight sessions on shutdown "
        "(default 10)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("stream", help="stream a trace file to a server")
    p.add_argument("trace")
    p.add_argument("--address", required=True, help="server address")
    p.add_argument("--session", required=True, help="session name")
    p.add_argument("--detector", choices=sorted(DETECTORS), default="fasttrack")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument(
        "--chunk-size", type=int, default=512, help="events per frame"
    )
    p.add_argument(
        "--fail-on-race", action="store_true", help="exit 1 if races are found"
    )
    p.add_argument(
        "--retries", type=int, default=8,
        help="reconnect-with-resume budget per operation (default 8)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="base reconnect backoff; doubles per attempt, jittered "
        "(default 0.05)",
    )
    p.add_argument("--json", action="store_true")
    _add_backend_argument(p)
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "chaos-proxy",
        help="deterministic fault-injecting proxy for a telemetry server",
    )
    p.add_argument(
        "--listen", default="tcp://127.0.0.1:0",
        help="address to listen on (port 0 picks a free port)",
    )
    p.add_argument(
        "--upstream", required=True,
        help="the real telemetry server's address",
    )
    p.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="wire fault plan, e.g. 'conn_drop@seed%%5=1;frame_corrupt@7' "
        f"(default: ${FAULT_PLAN_ENV}; empty = transparent proxy)",
    )
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument(
        "--stall-seconds", type=float, default=0.35,
        help="pause injected by 'stall' faults (default 0.35)",
    )
    p.add_argument(
        "--address-file",
        help="write the bound listen address here (for scripted clients)",
    )
    p.add_argument(
        "--duration", type=float, default=None,
        help="proxy for N seconds then exit (default: until ^C)",
    )
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_chaos_proxy)

    p = sub.add_parser("report", help="query a server's live merged report")
    p.add_argument("--address", required=True, help="server address")
    p.add_argument(
        "--follow", action="store_true",
        help="keep polling every --interval seconds",
    )
    p.add_argument("--interval", type=float, default=2.0)
    p.add_argument("--json", action="store_true")
    p.add_argument(
        "--report-out",
        help="write the merged repro/race-report/v1 document here",
    )
    p.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the server's merged metrics snapshot (JSON) here",
    )
    p.add_argument(
        "--trace-out", metavar="PATH",
        help="request and write the merged service Perfetto trace here",
    )
    p.add_argument(
        "--prom", action="store_true",
        help="print the metrics in Prometheus text format instead",
    )
    p.set_defaults(func=cmd_net_report)

    p = sub.add_parser("top", help="live operator console for a server")
    p.add_argument("--address", required=True, help="server address")
    p.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval in seconds (default 2)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print one sample and exit (rates are null)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit repro/top-status/v1 JSON instead of the dashboard",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "bench",
        help="run the core-operations benchmark and write BENCH_core.json",
    )
    p.add_argument("--out", default="BENCH_core.json",
                   help="output path (history appends next to it)")
    p.add_argument("--size", type=float, default=0.7,
                   help="workload size multiplier for the per-backend rows")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of-N repeats for the per-backend rows")
    p.add_argument("--gate-size", type=float, default=1.0,
                   help="workload size for the interleaved speedup gates")
    p.add_argument("--gate-rounds", type=int, default=5,
                   help="interleaved baseline/contender round count")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero if any speedup gate misses its target")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "coverage",
        help="audit detection quality: effective sampling rate, race "
        "attribution, and estimated true race count",
    )
    p.add_argument(
        "trace",
        help="a trace file, or a workload name to run live (seeded)",
    )
    p.add_argument("--detector", choices=sorted(DETECTORS), default="pacer")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.add_argument(
        "--rate", type=float, default=None,
        help="PACER sampling rate in percent (default 10 for pacer; "
        "live workload runs only)",
    )
    p.add_argument("--seed", type=int, default=0, help="workload trial seed")
    p.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the repro/coverage-report/v1 JSON document",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the coverage document instead of the summary",
    )
    _add_backend_argument(p)
    p.set_defaults(func=cmd_coverage)

    p = sub.add_parser("convert", help="convert between trace formats")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--format", choices=["auto", "text", "binary"], default="auto")
    p.set_defaults(func=cmd_convert)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
