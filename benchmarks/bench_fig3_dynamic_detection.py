"""Figure 3: PACER's detection rate for *dynamic* races vs sampling rate.

Paper: the average dynamic detection rate across evaluation races tracks
the specified/effective sampling rate — the headline proportionality
("get what you pay for") result.
"""

import pytest

from _common import (
    ACCURACY_RATES,
    accuracy_trials,
    baseline_experiment,
    print_banner,
    rate_accuracy,
)
from repro.analysis import render_table
from repro.sim.workloads import WORKLOADS


def compute():
    rows = {}
    for name in sorted(WORKLOADS):
        exp = baseline_experiment(name)
        per_rate = []
        for rate in ACCURACY_RATES:
            acc = rate_accuracy(name, rate, accuracy_trials(rate))
            per_rate.append(
                (
                    rate,
                    acc.mean_effective_rate,
                    acc.dynamic_detection_rate(exp.baseline_dynamic),
                )
            )
        rows[name] = per_rate
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_dynamic_detection_rate(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_banner("Figure 3: dynamic-race detection rate vs sampling rate")
    table = []
    for name, series in data.items():
        for rate, eff, dyn in series:
            table.append([name, f"{rate:.0%}", f"{eff:.3%}", f"{dyn:.3%}"])
    print(
        render_table(
            ["program", "specified r", "effective r", "dynamic detection"], table
        )
    )
    for name, series in data.items():
        detections = [dyn for _, _, dyn in series]
        # monotone in the sampling rate ...
        assert all(b >= a - 0.02 for a, b in zip(detections, detections[1:])), name
        # ... and roughly proportional: detection within a small factor of
        # the achieved (effective) rate at every point.
        for rate, eff, dyn in series:
            reference = max(eff, 1e-4)
            assert dyn <= 3.5 * reference + 0.02, (name, rate, eff, dyn)
            if eff > 0.005:
                assert dyn >= 0.25 * reference - 0.02, (name, rate, eff, dyn)
