"""Figure 7: PACER's overhead breakdown for r = 0-3%.

Paper (geomean over the suite): object metadata + sync-op instrumentation
≈ 15%; + read/write fast-path checks ("Pacer, r=0%") ≈ 33%; r=1% ≈ 52%;
r=3% ≈ 86% — the point being that the all-the-time cost is the cheap
fast-path check plus O(1) sync analysis, and sampled analysis adds cost
proportional to r.

We report two views over identical replayed traces:

* real wall-clock of the analysis (pytest-benchmark timings per config) —
  the Python dispatch baseline differs from a JIT, so absolute ratios are
  larger, but the ordering and r-scaling hold;
* the calibrated abstract cost model (fast path 0.18 units etc.), whose
  percentages land near the paper's.
"""

import time

import pytest

from _common import marked_trace, print_banner
from repro.analysis import render_table
from repro.core.pacer import PacerDetector
from repro.core.stats import CostModel
from repro.detectors import NullDetector
from repro.trace.events import ACCESS_KINDS

WORKLOAD = "pseudojbb"

CONFIGS = [
    ("base (no instrumentation)", None),
    ("OM + sync ops, r=0%", "sync_only"),
    ("Pacer, r=0%", 0.0),
    ("Pacer, r=1%", 0.01),
    ("Pacer, r=3%", 0.03),
]


def _run_config(kind, events):
    if kind is None:
        detector = NullDetector()
        detector.run(events)
        return detector
    detector = PacerDetector()
    if kind == "sync_only":
        for event in events:
            if event.kind not in ACCESS_KINDS:
                detector.apply(event)
        return detector
    detector.run(events)
    return detector


def _events_for(kind):
    rate = kind if isinstance(kind, float) else 0.0
    return marked_trace(WORKLOAD, rate)


@pytest.mark.benchmark(group="fig7-wallclock")
@pytest.mark.parametrize("label,kind", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_fig7_config_timing(benchmark, label, kind):
    events = _events_for(kind)
    benchmark.pedantic(_run_config, args=(kind, events), rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig7-summary")
def test_fig7_overhead_breakdown(benchmark):
    def compute():
        results = []
        for label, kind in CONFIGS:
            events = _events_for(kind)
            start = time.perf_counter()
            detector = _run_config(kind, events)
            elapsed = time.perf_counter() - start
            model_cost = CostModel().cost(detector.counters, detector.n_threads)
            results.append((label, elapsed, model_cost, detector))
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    base_time = results[0][1]
    # Cost-model baseline: the program's own work, one unit per event.
    n_events = len(_events_for(0.0))
    print_banner(f"Figure 7: overhead breakdown ({WORKLOAD}, replayed trace)")
    rows = []
    for label, elapsed, model_cost, _detector in results:
        rows.append(
            [
                label,
                f"{elapsed * 1e3:.0f} ms",
                f"{elapsed / base_time - 1:+.0%}",
                f"{model_cost / n_events:+.0%}",
            ]
        )
    print(
        render_table(
            ["configuration", "wall time", "measured overhead", "modelled overhead"],
            rows,
        )
    )
    times = [r[1] for r in results]
    model = [r[2] for r in results]
    # overhead ordering: base <= sync-only <= r=0 <= r=1% <= r=3%
    assert model[0] <= model[1] <= model[2] <= model[3] <= model[4]
    assert times[1] < times[4]  # sync-only is far cheaper than r=3%
    assert times[2] < times[4] * 1.05
    # modelled all-the-time overhead is deployable-small, sampling adds
    # cost in proportion (the paper's 33% -> 52% -> 86% progression)
    r0, r1, r3 = model[2] / n_events, model[3] / n_events, model[4] / n_events
    assert r0 < 0.9
    assert r0 < r1 < r3
