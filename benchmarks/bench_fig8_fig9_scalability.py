"""Figures 8 and 9: slowdown vs sampling rate, r = 0-100%.

Paper: overhead grows roughly linearly with r (Figure 8 over the full
range, Figure 9 zoomed into 0-10%); the r=100% endpoint is FASTTRACK-like
full analysis (8-12x there, scaled by implementation constants).
"""

import time

import pytest

from _common import marked_trace, print_banner
from repro.analysis import render_series
from repro.core.pacer import PacerDetector
from repro.core.stats import CostModel
from repro.detectors import FastTrackDetector, NullDetector

WORKLOAD = "xalan"
PERIOD = 1000
SIZE = 2.0
RATES = [0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 1.0]
ZOOM = [r for r in RATES if r <= 0.10]


def _time(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def compute():
    base_events = marked_trace(WORKLOAD, 0.0, period=PERIOD, size=SIZE)
    base_time = _time(lambda: NullDetector().run(base_events))
    points = []
    for rate in RATES:
        events = marked_trace(WORKLOAD, rate, period=PERIOD, size=SIZE)
        elapsed = _time(lambda ev=events: PacerDetector().run(ev))
        detector = PacerDetector()
        detector.run(events)
        model = CostModel().cost(detector.counters, detector.n_threads)
        points.append((rate, elapsed / base_time, model / len(events)))
    ft_time = _time(lambda: FastTrackDetector().run(base_events))
    return points, base_time, ft_time / base_time


@pytest.mark.benchmark(group="fig8-9")
def test_fig8_fig9_slowdown_vs_rate(benchmark):
    points, base_time, ft_slowdown = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    print_banner(f"Figures 8/9: slowdown vs sampling rate ({WORKLOAD}, replay)")
    print(
        render_series(
            "measured slowdown (vs uninstrumented replay)",
            [f"r={r:.0%}" for r, *_ in points],
            [s for _, s, _ in points],
        )
    )
    print(
        render_series(
            "modelled overhead (work units per program op)",
            [f"r={r:.0%}" for r, *_ in points],
            [m for *_x, m in points],
        )
    )
    print(f"FASTTRACK full-analysis slowdown: {ft_slowdown:.2f}x")

    slowdowns = [s for _, s, _ in points]
    model = [m for *_x, m in points]
    # monotone in r (small timing jitter tolerated)
    assert all(b >= a * 0.92 for a, b in zip(slowdowns, slowdowns[1:]))
    assert model == sorted(model)
    # r=100% costs a substantial factor more than r=0 (paper: 33% -> 12x)
    assert slowdowns[-1] > 2.0 * slowdowns[0]
    # r=100% PACER is in FASTTRACK's cost neighbourhood
    assert slowdowns[-1] > 0.5 * ft_slowdown
    # rough linearity (Figure 8): the model cost between r=10% and r=100%
    # scales within 3x of proportionally
    r10 = next(m for r, _s, m in points if r == 0.10)
    r100 = model[-1]
    growth = (r100 - model[0]) / max(r10 - model[0], 1e-9)
    assert 2.5 < growth < 30.0  # ~10x more sampling -> ~10x more added cost


@pytest.mark.benchmark(group="fig9-zoom")
def test_fig9_low_rate_zoom(benchmark):
    def zoom():
        out = []
        for rate in ZOOM:
            events = marked_trace(WORKLOAD, rate, period=PERIOD, size=SIZE)
            detector = PacerDetector()
            detector.run(events)
            out.append(
                (rate, CostModel().cost(detector.counters, detector.n_threads))
            )
        return out

    points = benchmark.pedantic(zoom, rounds=1, iterations=1)
    print_banner("Figure 9 (zoom, r=0-10%): modelled analysis cost")
    print(
        render_series(
            "model cost",
            [f"r={r:.0%}" for r, _ in points],
            [c for _, c in points],
        )
    )
    costs = [c for _, c in points]
    assert costs == sorted(costs)
    # in the low-rate regime added cost stays small relative to r=10%
    assert costs[1] - costs[0] < 0.5 * (costs[-1] - costs[0])
