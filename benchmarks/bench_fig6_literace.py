"""Figure 6: LiteRace's per-distinct-race detection on eclipse.

Burst length note: like the paper (which moved from bursts of 10 to
1,000 because short bursts could not cover whole cold regions), we use a
burst long enough to span a cold method body.

Paper: LiteRace (burst length 1,000, ~1.1% effective rate on eclipse)
finds some races in many runs but *never* reports several evaluation
races — the ones between two hot accesses, which its cold-region
heuristic samples at the 0.1% floor (≈0.0001% per race).  PACER at a
comparable effective rate detects every race at ≈ the sampling rate.
"""

import pytest

from _common import QUICK, baseline_experiment, print_banner, rate_accuracy, accuracy_trials
from repro.analysis import render_table, run_trial
from repro.analysis.tables import mean
from repro.detectors import LiteRaceDetector
from repro.sim.workloads import ECLIPSE
from repro.util.config import scaled_trials

#: longer hot loops let the adaptive sampler actually reach cold rates
SPEC = ECLIPSE.scaled(3.0)
TRIALS = scaled_trials(14, minimum=6)
BURST = 100


def compute():
    exp = baseline_experiment("eclipse")
    eval_races = exp.evaluation_races
    hot = {s.race_id for s in SPEC.racy_sites if s.hot}
    counts = {rid: 0 for rid in eval_races}
    ft_counts = {rid: 0 for rid in eval_races}
    eff = []
    for k in range(TRIALS):
        det = LiteRaceDetector(burst_length=BURST, seed=k)
        result = run_trial(SPEC, det, trial_seed=k, config=QUICK)
        eff.append(det.effective_rate)
        for rid in result.detected_ids:
            if rid in counts:
                counts[rid] += 1
        from repro.detectors import FastTrackDetector

        ft_result = run_trial(SPEC, FastTrackDetector(), trial_seed=k, config=QUICK)
        for rid in ft_result.detected_ids:
            if rid in ft_counts:
                ft_counts[rid] += 1
    pacer = rate_accuracy("eclipse", 0.03, accuracy_trials(0.03))
    return counts, ft_counts, hot, mean(eff), pacer


@pytest.mark.benchmark(group="fig6")
def test_fig6_literace_per_race(benchmark):
    counts, ft_counts, hot, eff, pacer = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    print_banner(
        f"Figure 6: LiteRace per-race detection on eclipse "
        f"(burst={BURST}, effective rate {eff:.2%}, {TRIALS} trials)"
    )
    rows = [
        [
            rid,
            "hot" if rid in hot else "cold",
            f"{counts[rid]}/{TRIALS}",
            f"{ft_counts[rid]}/{TRIALS}",
        ]
        for rid in sorted(counts, key=counts.get, reverse=True)
    ]
    print(
        render_table(
            ["race id", "placement", "LiteRace detected", "occurs (FastTrack)"],
            rows,
        )
    )

    # races that actually occur at this scale (seen by full tracking)
    occurring = {rid for rid, c in ft_counts.items() if c >= TRIALS / 2}
    detected_races = {rid for rid, c in counts.items() if c > 0}
    missed = occurring - detected_races
    print(f"LiteRace consistently missed (but occurring): {sorted(missed)}")
    pacer_found = {rid for rid, p in pacer.distinct_mean.items() if p > 0}
    print(f"PACER at r=3% found (over its trials): {len(pacer_found)} races")

    # LiteRace finds plenty of races (its heuristic is effective) ...
    assert detected_races, "LiteRace found nothing at all"
    # ... but some hot occurring races are never reported (the paper's
    # 'races do not always follow the cold-region hypothesis').
    assert missed, "expected LiteRace to consistently miss some races"
    assert missed <= hot, "missed occurring races should be hot-code races"
    # cold occurring races are caught reliably (sampled at ~100%)
    cold = [rid for rid in occurring if rid not in hot]
    if cold:
        assert mean([counts[rid] / TRIALS for rid in cold]) > 0.5
    # PACER, by contrast, has no blind spot: over its trials it reports
    # hot evaluation races as readily as cold ones.
    pacer_hot = {rid for rid in pacer_found if rid in hot}
    assert pacer_hot, "PACER should find hot races too"
