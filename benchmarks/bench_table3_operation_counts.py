"""Table 3: vector-clock joins/copies and read/write path counts at r=3%.

Paper: O(n)-time operations are almost entirely confined to sampling
periods — non-sampling slow joins and deep copies are negligible next to
fast joins / shallow copies, and non-sampling reads/writes almost always
take the inlined fast path.

Scale note (see EXPERIMENTS.md): after each sampling period the version
machinery re-converges at a one-time cost of O(max_live²) slow joins.
The paper amortizes this over non-sampling stretches of ~10⁶ sync ops;
our scaled-down runs give eclipse/xalan/pseudojbb long enough stretches
to show the paper's ratio, while hsqldb (102 live threads, T² ≈ 10⁴)
is asserted against the amortized mixing bound instead.
"""

import pytest

from _common import print_banner
from repro.analysis import render_table
from repro.core.pacer import PacerDetector
from repro.core.sampling import ScriptedController
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.workloads import WORKLOADS, build_program

RATE = 0.03
#: per-workload hot-loop scale (longer runs amortize re-convergence)
SIZES = {"eclipse": 4.0, "xalan": 4.0, "pseudojbb": 10.0, "hsqldb": 10.0}
CONFIG = RuntimeConfig(track_memory=False, nursery_bytes=8_192)


def one_in_33_schedule():
    """Deterministic 3% of GC periods sample (1 in every 33)."""
    return ScriptedController([i % 33 == 5 for i in range(100_000)])


def collect(name: str):
    spec = WORKLOADS[name].scaled(SIZES[name])
    detector = PacerDetector()
    runtime = Runtime(
        build_program(spec, 0),
        detector,
        controller=one_in_33_schedule(),
        config=CONFIG,
        seed=0,
    )
    runtime.run()
    c = detector.counters.snapshot()
    c["_sampling_periods"] = sum(
        1
        for (_, s), (_, prev) in zip(runtime.gc_log[1:], runtime.gc_log)
        if s and not prev
    ) + (1 if runtime.gc_log and runtime.gc_log[0][1] else 0)
    c["_max_live"] = spec.max_live
    c["_waves"] = len(spec.wave_sizes)
    return c


def compute():
    return {name: collect(name) for name in sorted(WORKLOADS)}


@pytest.mark.benchmark(group="table3")
def test_table3_operation_counts(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(f"Table 3: operation counts for PACER at r={RATE:.0%}")
    print(
        render_table(
            ["program", "slow(samp)", "fast(samp)", "slow(non)", "fast(non)"],
            [
                [
                    name,
                    int(c["joins_slow_sampling"]),
                    int(c["joins_fast_sampling"]),
                    int(c["joins_slow_nonsampling"]),
                    int(c["joins_fast_nonsampling"]),
                ]
                for name, c in data.items()
            ],
            title="VC joins",
        )
    )
    print(
        render_table(
            ["program", "deep(samp)", "shallow(samp)", "deep(non)", "shallow(non)"],
            [
                [
                    name,
                    int(c["copies_deep_sampling"]),
                    int(c["copies_shallow_sampling"]),
                    int(c["copies_deep_nonsampling"]),
                    int(c["copies_shallow_nonsampling"]),
                ]
                for name, c in data.items()
            ],
            title="VC copies",
        )
    )
    print(
        render_table(
            ["program", "slow(samp)", "slow(non)", "fast(non)"],
            [
                [
                    name,
                    int(c["reads_slow_sampling"]),
                    int(c["reads_slow_nonsampling"]),
                    int(c["reads_fast_nonsampling"]),
                ]
                for name, c in data.items()
            ],
            title="Reads",
        )
    )
    print(
        render_table(
            ["program", "slow(samp)", "slow(non)", "fast(non)"],
            [
                [
                    name,
                    int(c["writes_slow_sampling"]),
                    int(c["writes_slow_nonsampling"]),
                    int(c["writes_fast_nonsampling"]),
                ]
                for name, c in data.items()
            ],
            title="Writes",
        )
    )

    for name, c in data.items():
        non_slow = c["joins_slow_nonsampling"]
        non_fast = c["joins_fast_nonsampling"]
        assert non_fast > 0, name
        if name == "hsqldb":
            # 102 live threads: assert the amortized mixing bound — the
            # one-time O(max_live²) re-convergence per sampling period
            # (plus per-wave thread-startup mixing) explains all slow work.
            bound = (
                0.6
                * c["_max_live"] ** 2
                * (c["_sampling_periods"] + c["_waves"])
            )
            assert non_slow <= bound, (name, non_slow, bound)
        else:
            # the paper's ratio: nearly all non-sampling joins are fast
            assert non_slow <= 0.20 * (non_slow + non_fast), (name, non_slow, non_fast)
        # deep copies essentially never happen outside sampling periods
        assert c["copies_deep_nonsampling"] <= 0.02 * (
            c["copies_deep_nonsampling"] + c["copies_shallow_nonsampling"] + 1
        ), name
        # non-sampling accesses overwhelmingly take the inlined fast path
        assert c["reads_fast_nonsampling"] > 8 * c["reads_slow_nonsampling"], name
        assert c["writes_fast_nonsampling"] > 8 * c["writes_slow_nonsampling"], name
