"""Table 2: thread counts and race counts.

Paper (per program): total threads / max live threads; distinct races
observed in ≥1 and ≥5 of *all* trials, and in ≥1 / ≥5 / ≥25 of the 50
fully-sampled trials.  Our thread columns match the paper exactly (the
workloads are calibrated to them); race columns reproduce the *shape*:
a long occurrence tail for eclipse/xalan, full reproducibility for
hsqldb/pseudojbb.
"""

import pytest

from _common import QUICK, baseline_experiment, print_banner, rate_accuracy, accuracy_trials
from repro.analysis import render_table, run_trial
from repro.sim.workloads import WORKLOADS

PAPER = {
    # name: (total, max_live, >=1_all, >=5_all, r100_ge1, r100_ge5, r100_ge25)
    "eclipse": (16, 8, 77, 50, 55, 44, 27),
    "hsqldb": (403, 102, 28, 28, 23, 23, 23),
    "xalan": (9, 9, 73, 38, 70, 34, 19),
    "pseudojbb": (37, 9, 14, 14, 14, 14, 11),
}


def compute_rows():
    rows = []
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        exp = baseline_experiment(name)
        counts = exp.occurrence_counts()
        n = exp.full_trials
        ge1 = sum(1 for c in counts.values() if c >= 1)
        ge_tenth = sum(1 for c in counts.values() if c >= max(1, n // 10))
        ge_half = sum(1 for c in counts.values() if c >= n / 2)
        # pooled sampled trials widen the ">= 1 anywhere" column
        pooled = set(counts)
        acc = rate_accuracy(name, 0.25, accuracy_trials(0.25))
        pooled |= set(acc.distinct_mean)
        rows.append(
            [
                name,
                spec.threads_total,
                spec.max_live,
                len(pooled),
                ge1,
                ge_tenth,
                ge_half,
                f"(paper {PAPER[name][0]}/{PAPER[name][1]}, races {PAPER[name][2]})",
            ]
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_threads_and_races(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_banner("Table 2: thread counts and race counts")
    print(
        render_table(
            [
                "program",
                "threads total",
                "max live",
                "races >=1 (pooled)",
                "races >=1 (full)",
                "races >=10% trials",
                "races >=50% trials",
                "paper",
            ],
            rows,
        )
    )
    by_name = {r[0]: r for r in rows}
    for name, (total, max_live, *_rest) in PAPER.items():
        row = by_name[name]
        assert row[1] == total  # thread columns match the paper exactly
        assert row[2] == max_live
        # occurrence tail: strictly fewer races clear higher thresholds
        assert row[4] >= row[5] >= row[6] > 0
    # eclipse/xalan have long tails; hsqldb/pseudojbb are reproducible
    assert by_name["xalan"][4] > by_name["xalan"][6]
    assert by_name["hsqldb"][6] >= 20
    assert by_name["pseudojbb"][6] >= 9
