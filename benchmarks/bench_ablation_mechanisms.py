"""Ablations of PACER's three overhead mechanisms (our addition).

DESIGN.md calls out three design choices that make non-sampling periods
cheap; each is individually disableable:

* **version epochs** (``use_versions=False``): joins lose the O(1) skip
  and must compare clocks;
* **clock sharing** (``use_sharing=False``): lock releases deep-copy;
* **metadata discard** (``discard_metadata=False``): variable metadata is
  never freed, so the fast path stops firing and space grows.

Each ablation must leave *reports unchanged* (the mechanisms are pure
optimizations) while measurably worsening the relevant cost.
"""

import pytest

from _common import marked_trace, print_banner
from repro.analysis import render_table
from repro.core.pacer import PacerDetector

WORKLOAD = "eclipse"
RATE = 0.10


def run_variant(**kwargs):
    events = marked_trace(WORKLOAD, RATE, period=1500, size=2.0)
    detector = PacerDetector(**kwargs)
    detector.run(events)
    return detector


def compute():
    return {
        "full pacer": run_variant(),
        "no versions": run_variant(use_versions=False),
        "no sharing": run_variant(use_sharing=False),
        "no discard": run_variant(discard_metadata=False),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_mechanisms(benchmark):
    variants = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_banner(f"Ablation: PACER mechanisms ({WORKLOAD}, r={RATE:.0%} replay)")
    rows = []
    for label, det in variants.items():
        c = det.counters
        rows.append(
            [
                label,
                c.joins_slow_nonsampling,
                c.joins_fast_nonsampling,
                c.copies_deep_nonsampling,
                c.copies_shallow_nonsampling,
                c.reads_fast_nonsampling + c.writes_fast_nonsampling,
                det.tracked_variables,
                det.footprint_words(),
                len(det.races),
            ]
        )
    print(
        render_table(
            [
                "variant",
                "slow joins(non)",
                "fast joins(non)",
                "deep copies(non)",
                "shallow copies(non)",
                "fast-path accesses",
                "tracked vars",
                "footprint words",
                "races",
            ],
            rows,
        )
    )

    full = variants["full pacer"]
    reports = {(r.var, r.kind, r.first_site, r.second_site) for r in full.races}
    for label, det in variants.items():
        got = {(r.var, r.kind, r.first_site, r.second_site) for r in det.races}
        assert got == reports, f"{label} changed the reported races"

    # versions: without them, slow joins explode
    assert (
        variants["no versions"].counters.joins_slow_nonsampling
        > 2 * full.counters.joins_slow_nonsampling
    )
    # sharing: without it, every non-sampling release deep-copies
    assert variants["no sharing"].counters.copies_deep_nonsampling > 0
    assert full.counters.copies_deep_nonsampling == 0
    assert (
        variants["no sharing"].footprint_words() > full.footprint_words()
    )
    # discard: without it, metadata accumulates and the fast path misses
    assert variants["no discard"].tracked_variables > 3 * max(
        full.tracked_variables, 1
    )
    no_discard = variants["no discard"].counters
    assert (
        no_discard.reads_fast_nonsampling + no_discard.writes_fast_nonsampling
        < full.counters.reads_fast_nonsampling + full.counters.writes_fast_nonsampling
    )
