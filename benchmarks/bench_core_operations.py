"""Core-operation complexity: the O(1) vs O(n) claims, measured.

The paper's complexity arguments (§2-3) reduce to a few primitive costs:

* epoch comparison (`c@t ⪯ C`) and version-epoch checks are O(1) in the
  thread count;
* vector-clock joins, deep copies, and read-map checks in shared mode
  are O(n);
* PACER's non-sampling access fast path is O(1) and tiny.

This bench times the primitives directly at several thread counts and
asserts the scaling split: O(n) operations grow with n, O(1) operations
do not (within generous noise bounds).
"""

import time

import pytest

from _common import print_banner
from repro.analysis import render_table
from repro.core.clocks import Epoch, VectorClock, epoch_leq_vc
from repro.core.pacer import PacerDetector

THREAD_COUNTS = [8, 64, 512]
REPS = 20_000


def _time_op(fn, reps=REPS):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def _clock(n):
    return VectorClock(list(range(1, n + 1)))


def measure(n):
    a, b = _clock(n), _clock(n)
    epoch = Epoch(n // 2, n // 2)
    out = {}
    out["epoch_leq (O(1))"] = _time_op(lambda: epoch_leq_vc(epoch, a))
    out["vc_leq (O(n))"] = _time_op(lambda: a.leq(b), reps=REPS // 4)
    out["vc_join (O(n))"] = _time_op(lambda: a.join(b), reps=REPS // 4)
    out["vc_copy (O(n))"] = _time_op(lambda: a.copy(), reps=REPS // 4)

    pacer = PacerDetector(sampling=False)
    for tid in range(n):
        pacer._thread_meta(tid)
    out["pacer fast path (O(1))"] = _time_op(lambda: pacer.read(0, 12345))
    return out


@pytest.mark.benchmark(group="core-ops")
def test_core_operation_scaling(benchmark):
    data = benchmark.pedantic(
        lambda: {n: measure(n) for n in THREAD_COUNTS}, rounds=1, iterations=1
    )
    print_banner("Core operation costs vs thread count (ns/op)")
    ops = list(data[THREAD_COUNTS[0]])
    rows = [
        [op] + [f"{data[n][op] * 1e9:.0f}" for n in THREAD_COUNTS] for op in ops
    ]
    print(render_table(["operation"] + [f"n={n}" for n in THREAD_COUNTS], rows))

    small, large = THREAD_COUNTS[0], THREAD_COUNTS[-1]
    for op in ops:
        growth = data[large][op] / data[small][op]
        if "O(n)" in op:
            # element-count-dependent: measurably grows over 64x threads
            # (constants dominate C-level copies, so the bar is modest)
            assert growth > 3.0, (op, growth)
        else:
            # constant-time: essentially flat over 64x threads
            assert growth < 3.0, (op, growth)
