"""Core-operation complexity: the O(1) vs O(n) claims, measured.

The paper's complexity arguments (§2-3) reduce to a few primitive costs:

* epoch comparison (`c@t ⪯ C`) and version-epoch checks are O(1) in the
  thread count;
* vector-clock joins, deep copies, and read-map checks in shared mode
  are O(n);
* PACER's non-sampling access fast path is O(1) and tiny.

This bench times the primitives directly at several thread counts and
asserts the scaling split: O(n) operations grow with n, O(1) operations
do not (within generous noise bounds).

A second section measures the batched event dispatch (``run_batch``)
against scalar ``run`` on recorded traces.  Running this file directly
with ``--smoke`` executes a fast version of just that comparison and
exits non-zero if batched dispatch is ever slower than scalar — the CI
throughput gate.
"""

import sys
import time

import pytest

from _common import marked_trace, print_banner
from repro.analysis import render_table
from repro.bench import (
    BATCH_CONFIGS,
    PACKED_NP_SPEEDUP_TARGET,
    PACKED_SPEEDUP_TARGET,
    _best_rate,
    backend_comparison,
    emit_json as _emit_json,
    interleaved_speedup,
)
from repro.core.backend import BACKENDS
from repro.core.clocks import Epoch, VectorClock, epoch_leq_vc
from repro.core.pacer import PacerDetector
from repro.detectors import FastTrackDetector
from repro.trace.batch import encode_batch

THREAD_COUNTS = [8, 64, 512]
REPS = 20_000


def _time_op(fn, reps=REPS):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def _clock(n):
    return VectorClock(list(range(1, n + 1)))


def measure(n):
    a, b = _clock(n), _clock(n)
    epoch = Epoch(n // 2, n // 2)
    out = {}
    out["epoch_leq (O(1))"] = _time_op(lambda: epoch_leq_vc(epoch, a))
    out["vc_leq (O(n))"] = _time_op(lambda: a.leq(b), reps=REPS // 4)
    out["vc_join (O(n))"] = _time_op(lambda: a.join(b), reps=REPS // 4)
    out["vc_copy (O(n))"] = _time_op(lambda: a.copy(), reps=REPS // 4)

    pacer = PacerDetector(sampling=False)
    for tid in range(n):
        pacer._thread_meta(tid)
    out["pacer fast path (O(1))"] = _time_op(lambda: pacer.read(0, 12345))
    return out


@pytest.mark.benchmark(group="core-ops")
def test_core_operation_scaling(benchmark):
    data = benchmark.pedantic(
        lambda: {n: measure(n) for n in THREAD_COUNTS}, rounds=1, iterations=1
    )
    print_banner("Core operation costs vs thread count (ns/op)")
    ops = list(data[THREAD_COUNTS[0]])
    rows = [
        [op] + [f"{data[n][op] * 1e9:.0f}" for n in THREAD_COUNTS] for op in ops
    ]
    print(render_table(["operation"] + [f"n={n}" for n in THREAD_COUNTS], rows))

    small, large = THREAD_COUNTS[0], THREAD_COUNTS[-1]
    for op in ops:
        growth = data[large][op] / data[small][op]
        if "O(n)" in op:
            # element-count-dependent: measurably grows over 64x threads
            # (constants dominate C-level copies, so the bar is modest)
            assert growth > 3.0, (op, growth)
        else:
            # constant-time: essentially flat over 64x threads
            assert growth < 3.0, (op, growth)


# -- batched event dispatch vs scalar -----------------------------------------
#
# BATCH_CONFIGS and the backend machinery live in repro.bench (shared
# with the ``repro bench`` CLI command); this module keeps the pytest
# wrappers and the CI gate entry points.


def batched_speedups(size=0.7, repeats=3, backend=None):
    """[(label, n_events, encode ns/ev, scalar ev/s, batched ev/s, speedup), ...]

    Each engine is timed on its native input: scalar ``run`` over the
    :class:`Event` list, batched ``run_batch`` over the pre-built
    columnar :class:`EventBatch`.  Encoding is a one-time trace-loading
    cost (like parsing events from a file), reported in its own column.
    ``backend`` picks the state representation (None = session default).
    """
    rows = []
    for label, factory, build in BATCH_CONFIGS:
        events = build(size)
        start = time.perf_counter_ns()
        encoded = encode_batch(events)
        encode_ns = (time.perf_counter_ns() - start) / max(1, len(events))

        def scalar():
            det = factory(backend=backend)
            det.run(events)
            return det.perf.events_per_sec

        def batched():
            det = factory(backend=backend)
            det.run_batch(encoded)
            return det.perf.events_per_sec

        s = _best_rate(scalar, repeats)
        b = _best_rate(batched, repeats)
        rows.append((label, len(events), encode_ns, s, b, b / s))
    return rows


def _print_speedups(rows):
    print(render_table(
        ["detector", "events", "encode ns/ev", "scalar ev/s",
         "batched ev/s", "speedup"],
        [[label, n, f"{e:.0f}", f"{s:,.0f}", f"{b:,.0f}", f"{sp:.2f}x"]
         for label, n, e, s, b, sp in rows],
    ))


@pytest.mark.benchmark(group="batched-dispatch")
def test_batched_dispatch_throughput(benchmark):
    rows = benchmark.pedantic(batched_speedups, rounds=1, iterations=1)
    print_banner("Batched dispatch vs scalar (replay throughput)")
    _print_speedups(rows)
    # the full-size runs show ~2x; the hard gate here is direction only
    # (single-core CI boxes are too noisy for a sharp ratio assert)
    for row in rows:
        label, speedup = row[0], row[-1]
        assert speedup > 1.0, (label, speedup)


def smoke() -> int:
    """Fast CI gate: batched dispatch must not be slower than scalar."""
    rows = batched_speedups(size=0.3, repeats=2)
    print_banner("Batched dispatch smoke gate")
    _print_speedups(rows)
    slower = [row[0] for row in rows if row[-1] <= 1.0]
    if slower:
        print(f"FAIL: batched dispatch slower than scalar for {slower}")
        return 1
    print("OK: batched dispatch >= scalar for every detector")
    return 0


# -- state-backend comparison ---------------------------------------------------
#
# PACKED_SPEEDUP_TARGET / PACKED_NP_SPEEDUP_TARGET and
# ``backend_comparison`` are imported from repro.bench; the sharp ratios
# are measured locally into BENCH_core.json (interleaved methodology),
# CI re-runs direction-only (see state_gate).

#: workload for the memory gate (the paper's largest space case)
MEMORY_GATE_WORKLOAD = "eclipse"


def _print_backends(rows):
    print(render_table(
        ["detector", "backend", "events", "scalar ev/s", "batched ev/s",
         "footprint words"],
        [[label, backend, n, f"{s:,.0f}", f"{b:,.0f}", f"{fp:,}"]
         for label, backend, n, s, b, fp in rows],
    ))


def emit_json(path, size=0.7, repeats=3) -> int:
    """Write BENCH_core.json (see :func:`repro.bench.emit_json`)."""
    print_banner("State backends: batched replay throughput")
    return _emit_json(path, size=size, repeats=repeats)


def state_gate() -> int:
    """CI gate for the arena backends: space parity and direction.

    * memory: no arena backend's footprint may exceed the object
      backend's on the eclipse workload (identical by construction; the
      gate pins it);
    * throughput: every arena backend's batched replay must beat object
      batched replay on the layout-bound fasttrack config, measured
      interleaved (direction only — CI boxes are too noisy for the
      sharp 1.5x/5x targets, which BENCH_core.json documents from a
      quiet machine).

    ``packed-np`` participates exactly when numpy is importable; on a
    numpy-less interpreter the gate covers object/packed and notes the
    skip.
    """
    events = marked_trace(MEMORY_GATE_WORKLOAD, 0.10, size=0.5)
    encoded = encode_batch(events)
    arenas = [b for b in BACKENDS if b != "object"]
    print_banner("Arena-backend state gate (eclipse footprint + direction)")
    if "packed-np" not in BACKENDS:
        print("note: packed-np unavailable (numpy not installed); "
              "gating object/packed only")
    failures = []
    for label, factory in (
        ("fasttrack", FastTrackDetector),
        ("pacer r=10%", PacerDetector),
    ):
        footprints = {}
        for backend in BACKENDS:
            det = factory(backend=backend)
            det.run_batch(encoded)
            footprints[backend] = det.footprint_words()
        print(f"{label}: " + ", ".join(
            f"{b}={footprints[b]:,} words" for b in BACKENDS))
        for backend in arenas:
            if footprints[backend] > footprints["object"]:
                failures.append(f"{label} {backend} footprint")
    for backend in arenas:
        speedup, _ = interleaved_speedup(backend, size=0.5, rounds=3)
        print(f"{backend} vs object batched replay (fasttrack, "
              f"interleaved): {speedup:.2f}x")
        if speedup <= 1.0:
            failures.append(f"fasttrack {backend} batched throughput")
    if failures:
        print(f"FAIL: arena backends regressed on {failures}")
        return 1
    print(f"OK: arena footprints <= object on eclipse; batched replay "
          f"faster than object on fasttrack for {arenas}")
    return 0


# -- observability-disabled overhead ------------------------------------------


def obs_disabled_overhead(size=0.5, repeats=3):
    """[(label, n_events, baseline ev/s, run_batch ev/s, ratio), ...]

    ``baseline`` drives ``apply_batch`` directly — the batched hot loop
    with no observer hooks at all, i.e. the pre-observability shape of
    ``run_batch``.  ``run_batch`` with no observer attached must stay
    within a few percent of it: its only additions are one
    ``observer is None`` check per batch and the perf accounting.
    """
    rows = []
    for label, factory, build in BATCH_CONFIGS:
        events = build(size)
        encoded = encode_batch(events)

        def baseline(factory=factory):
            det = factory()
            start = time.perf_counter_ns()
            det.apply_batch(encoded)
            return len(events) * 1e9 / max(1, time.perf_counter_ns() - start)

        def disabled(factory=factory):
            det = factory()  # observer slot stays None
            det.run_batch(encoded)
            return det.perf.events_per_sec

        base = _best_rate(baseline, repeats)
        dis = _best_rate(disabled, repeats)
        rows.append((label, len(events), base, dis, dis / base))
    return rows


def _print_obs_overhead(rows):
    print(render_table(
        ["detector", "events", "baseline ev/s", "run_batch ev/s", "ratio"],
        [[label, n, f"{base:,.0f}", f"{dis:,.0f}", f"{ratio:.3f}"]
         for label, n, base, dis, ratio in rows],
    ))


#: run_batch with no observer must keep >= 95% of the raw loop's rate
OBS_GATE_RATIO = 0.95


def obs_gate() -> int:
    """CI gate: disabled observability costs < 5% replay throughput."""
    rows = obs_disabled_overhead(size=0.3, repeats=3)
    print_banner("Observability-disabled throughput gate")
    _print_obs_overhead(rows)
    slow = [label for label, _, _, _, ratio in rows if ratio < OBS_GATE_RATIO]
    if slow:
        print(f"FAIL: disabled-observer run_batch below {OBS_GATE_RATIO:.0%} "
              f"of the uninstrumented loop for {slow}")
        return 1
    print(f"OK: disabled-observer run_batch within "
          f"{(1 - OBS_GATE_RATIO):.0%} of the uninstrumented loop")
    return 0


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_disabled_overhead(benchmark):
    rows = benchmark.pedantic(obs_disabled_overhead, rounds=1, iterations=1)
    print_banner("Observability-disabled overhead (replay throughput)")
    _print_obs_overhead(rows)
    for label, _, _, _, ratio in rows:
        assert ratio >= OBS_GATE_RATIO, (label, ratio)


if __name__ == "__main__":
    argv = sys.argv[1:]
    known = {"--smoke", "--obs-gate", "--state-gate", "--emit-json"}
    if known & set(argv):
        code = 0
        if "--smoke" in argv:
            code = smoke() or code
        if "--obs-gate" in argv:
            code = obs_gate() or code
        if "--state-gate" in argv:
            code = state_gate() or code
        if "--emit-json" in argv:
            at = argv.index("--emit-json")
            path = (argv[at + 1] if at + 1 < len(argv)
                    and not argv[at + 1].startswith("--") else "BENCH_core.json")
            code = emit_json(path) or code
        sys.exit(code)
    print("usage: bench_core_operations.py --smoke | --obs-gate | "
          "--state-gate | --emit-json [PATH] (or run under pytest)")
    sys.exit(2)
