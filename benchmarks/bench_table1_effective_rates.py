"""Table 1: effective vs specified sampling rates.

Paper: effective rates track specified rates closely (±1 std-dev around
the target), with slight under-sampling at r=1% where the bias-correction
mechanism has too few periods to learn from.
"""

import random

import pytest

from _common import QUICK, print_banner, run_workload
from repro.analysis import render_table
from repro.analysis.tables import mean, stdev
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.sim.workloads import WORKLOADS
from repro.util.config import scaled_trials

SPECIFIED = [0.01, 0.03, 0.05, 0.10, 0.25]


def effective_rates(name: str, rate: float, trials: int):
    rates = []
    for k in range(trials):
        detector = PacerDetector()
        controller = BiasCorrectedController(
            rate, rng=random.Random(hash((name, rate, k)) & 0xFFFF)
        )
        runtime = run_workload(
            name, detector, controller=controller, trial_seed=k, size=0.6
        )
        rates.append(runtime.effective_sampling_rate)
    return rates


def compute_table():
    trials = scaled_trials(6, minimum=3)
    rows = []
    for name in sorted(WORKLOADS):
        cells = [name]
        for rate in SPECIFIED:
            observed = effective_rates(name, rate, trials)
            cells.append(
                f"{100 * mean(observed):.1f}±{100 * stdev(observed):.1f}"
            )
        rows.append(cells)
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_effective_sampling_rates(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    print_banner("Table 1: effective sampling rates (%) for specified rates")
    headers = ["program"] + [f"r={100 * r:g}%" for r in SPECIFIED]
    print(render_table(headers, rows))
    # Shape assertions: effective rate grows with the specified rate and
    # lands in the right ballpark at the larger rates.
    for cells in rows:
        means = [float(c.split("±")[0]) for c in cells[1:]]
        assert means == sorted(means) or all(
            b >= a - 1.0 for a, b in zip(means, means[1:])
        )
        assert 5.0 <= means[3] <= 16.0  # r=10%
        assert 15.0 <= means[4] <= 35.0  # r=25%
