"""Figure 4: PACER's detection rate for *distinct* races vs sampling rate.

Paper: counting each static race once per trial, the detection rate is
somewhat *above* the sampling rate (a race occurring several times per
run gives PACER several chances), which is what developers care about.
"""

import pytest

from _common import (
    ACCURACY_RATES,
    accuracy_trials,
    baseline_experiment,
    print_banner,
    rate_accuracy,
)
from repro.analysis import render_table
from repro.sim.workloads import WORKLOADS


def compute():
    rows = {}
    for name in sorted(WORKLOADS):
        exp = baseline_experiment(name)
        per_rate = []
        for rate in ACCURACY_RATES:
            acc = rate_accuracy(name, rate, accuracy_trials(rate))
            per_rate.append(
                (
                    rate,
                    acc.mean_effective_rate,
                    acc.dynamic_detection_rate(exp.baseline_dynamic),
                    acc.distinct_detection_rate(exp.baseline_distinct),
                )
            )
        rows[name] = per_rate
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_distinct_detection_rate(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_banner("Figure 4: distinct-race detection rate vs sampling rate")
    table = []
    for name, series in data.items():
        for rate, eff, dyn, distinct in series:
            table.append(
                [name, f"{rate:.0%}", f"{eff:.3%}", f"{dyn:.3%}", f"{distinct:.3%}"]
            )
    print(
        render_table(
            ["program", "specified r", "effective r", "dynamic", "distinct"],
            table,
        )
    )
    for name, series in data.items():
        rates = [d for *_x, d in series]
        assert all(b >= a - 0.03 for a, b in zip(rates, rates[1:])), name
        # distinct detection is at least the dynamic detection rate: a
        # race occurring k times per run gives PACER k chances.
        for rate, eff, dyn, distinct in series:
            assert distinct >= dyn - 0.02, (name, rate, dyn, distinct)
