"""Shared benchmark infrastructure.

Benchmarks print the rows/series the paper's tables and figures report.
Default sizes finish the whole suite in minutes; set ``REPRO_SCALE`` to
raise trial counts toward paper scale.  Cached computations (the r=100%
baselines) are shared across benchmark modules within one pytest run.
"""

from __future__ import annotations

import os
import random
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.analysis import DetectionExperiment
from repro.analysis.parallel import TrialTask, default_jobs, run_matrix
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.scheduler import Scheduler
from repro.sim.workloads import WORKLOADS, WorkloadSpec, build_program
from repro.util.config import scale, scaled_trials

QUICK = RuntimeConfig(track_memory=False)

#: worker processes for matrix-style benchmarks; set ``REPRO_JOBS=N`` to
#: fan trials across a pool (results are identical for any value).
JOBS = default_jobs()


def run_tasks(tasks):
    """Run :class:`TrialTask` trials honoring the ``REPRO_JOBS`` setting."""
    return run_matrix(tasks, jobs=JOBS)

#: workload size multipliers for accuracy experiments (hsqldb is heavy)
ACCURACY_SCALE = {"eclipse": 0.7, "hsqldb": 0.5, "xalan": 0.7, "pseudojbb": 0.7}

#: sampling rates evaluated in the accuracy figures
ACCURACY_RATES = [0.01, 0.03, 0.10, 0.25]


def accuracy_spec(name: str) -> WorkloadSpec:
    return WORKLOADS[name].scaled(ACCURACY_SCALE.get(name, 0.7))


@lru_cache(maxsize=None)
def baseline_experiment(name: str) -> DetectionExperiment:
    """The shared fully-sampled baseline for one workload (cached)."""
    exp = DetectionExperiment(
        accuracy_spec(name),
        full_trials=scaled_trials(12, minimum=6),
        config=QUICK,
    )
    exp.run_baseline()
    return exp


@lru_cache(maxsize=None)
def rate_accuracy(name: str, rate: float, trials: int):
    """Cached PACER accuracy run for (workload, rate)."""
    exp = baseline_experiment(name)
    return exp.run_rate(rate, trials=trials, seed_base=40_000 + int(rate * 1000))


def accuracy_trials(rate: float) -> int:
    """Trial count per rate: a scaled-down §5.1 formula."""
    base = min(max(int(0.6 / rate), 10), 40)
    return scaled_trials(base, minimum=4)


@lru_cache(maxsize=None)
def recorded_trace(name: str, trial_seed: int = 0, size: float = 0.7) -> tuple:
    """A fixed recorded trace of one workload (for replay timing)."""
    spec = WORKLOADS[name].scaled(size)
    events: List = []
    scheduler = Scheduler(build_program(spec, trial_seed), seed=trial_seed,
                          sink=events.append)
    scheduler.run()
    return tuple(events)


def pacer_with_rate(rate: float, seed: int = 0) -> Tuple[PacerDetector, BiasCorrectedController]:
    detector = PacerDetector()
    controller = BiasCorrectedController(rate, rng=random.Random(seed))
    return detector, controller


def run_workload(name: str, detector, controller=None, trial_seed: int = 0,
                 config: RuntimeConfig = QUICK, size: float = 0.7) -> Runtime:
    spec = WORKLOADS[name].scaled(size)
    runtime = Runtime(
        build_program(spec, trial_seed),
        detector,
        controller=controller,
        config=config,
        seed=trial_seed,
    )
    runtime.run()
    return runtime


def write_bench_json(path, doc: Dict) -> None:
    """Write one benchmark's machine-readable results (CI artifact).

    Stable formatting (sorted keys, trailing newline) so committed
    evidence files diff cleanly between runs.  Each write also appends a
    timestamped copy to ``BENCH_history.jsonl`` next to ``path`` — one
    JSON object per line — so regressions can be traced across runs
    without digging through CI artifact archives.
    """
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    append_bench_history(path, doc)


def append_bench_history(path, doc: Dict) -> None:
    """Append ``doc`` (timestamped) to the sibling ``BENCH_history.jsonl``."""
    import json
    import time
    from pathlib import Path

    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **doc,
    }
    history = Path(path).resolve().parent / "BENCH_history.jsonl"
    with open(history, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {history.name}")


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def marked_trace(name: str, rate: float, period: int = 400,
                 trial_seed: int = 0, size: float = 0.7) -> list:
    """A recorded trace with sampling-period markers inserted.

    Splits the trace into fixed-size periods and marks a deterministic
    fraction ``rate`` of them as sampling periods (spread evenly), so
    replay benchmarks measure PACER at an exact effective rate.
    """
    from repro.trace.events import sbegin, send

    base = recorded_trace(name, trial_seed, size)
    n_periods = max(1, (len(base) + period - 1) // period)
    sampled = set()
    if rate >= 1.0:
        sampled = set(range(n_periods))
    elif rate > 0:
        want = max(1, round(rate * n_periods))
        step = n_periods / want
        sampled = {int(i * step) for i in range(want)}
    events = []
    sampling = False
    for i in range(n_periods):
        should = i in sampled
        if should and not sampling:
            events.append(sbegin())
            sampling = True
        elif not should and sampling:
            events.append(send())
            sampling = False
        events.extend(base[i * period:(i + 1) * period])
    if sampling:
        events.append(send())
    return events
