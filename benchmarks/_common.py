"""Shared benchmark infrastructure.

Benchmarks print the rows/series the paper's tables and figures report.
Default sizes finish the whole suite in minutes; set ``REPRO_SCALE`` to
raise trial counts toward paper scale.  Cached computations (the r=100%
baselines) are shared across benchmark modules within one pytest run.
"""

from __future__ import annotations

import os
import random
from functools import lru_cache
from typing import Dict, List, Tuple

from repro import bench
from repro.analysis import DetectionExperiment
from repro.analysis.parallel import TrialTask, default_jobs, run_matrix
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.scheduler import Scheduler
from repro.sim.workloads import WORKLOADS, WorkloadSpec, build_program
from repro.util.config import scale, scaled_trials

QUICK = RuntimeConfig(track_memory=False)

#: worker processes for matrix-style benchmarks; set ``REPRO_JOBS=N`` to
#: fan trials across a pool (results are identical for any value).
JOBS = default_jobs()


def run_tasks(tasks):
    """Run :class:`TrialTask` trials honoring the ``REPRO_JOBS`` setting."""
    return run_matrix(tasks, jobs=JOBS)

#: workload size multipliers for accuracy experiments (hsqldb is heavy)
ACCURACY_SCALE = {"eclipse": 0.7, "hsqldb": 0.5, "xalan": 0.7, "pseudojbb": 0.7}

#: sampling rates evaluated in the accuracy figures
ACCURACY_RATES = [0.01, 0.03, 0.10, 0.25]


def accuracy_spec(name: str) -> WorkloadSpec:
    return WORKLOADS[name].scaled(ACCURACY_SCALE.get(name, 0.7))


@lru_cache(maxsize=None)
def baseline_experiment(name: str) -> DetectionExperiment:
    """The shared fully-sampled baseline for one workload (cached)."""
    exp = DetectionExperiment(
        accuracy_spec(name),
        full_trials=scaled_trials(12, minimum=6),
        config=QUICK,
    )
    exp.run_baseline()
    return exp


@lru_cache(maxsize=None)
def rate_accuracy(name: str, rate: float, trials: int):
    """Cached PACER accuracy run for (workload, rate)."""
    exp = baseline_experiment(name)
    return exp.run_rate(rate, trials=trials, seed_base=40_000 + int(rate * 1000))


def accuracy_trials(rate: float) -> int:
    """Trial count per rate: a scaled-down §5.1 formula."""
    base = min(max(int(0.6 / rate), 10), 40)
    return scaled_trials(base, minimum=4)


# the trace recorder lives in repro.bench now (shared with ``repro
# bench``); re-exported here so every benchmark module keeps one import
recorded_trace = bench.recorded_trace


def pacer_with_rate(rate: float, seed: int = 0) -> Tuple[PacerDetector, BiasCorrectedController]:
    detector = PacerDetector()
    controller = BiasCorrectedController(rate, rng=random.Random(seed))
    return detector, controller


def run_workload(name: str, detector, controller=None, trial_seed: int = 0,
                 config: RuntimeConfig = QUICK, size: float = 0.7) -> Runtime:
    spec = WORKLOADS[name].scaled(size)
    runtime = Runtime(
        build_program(spec, trial_seed),
        detector,
        controller=controller,
        config=config,
        seed=trial_seed,
    )
    runtime.run()
    return runtime


write_bench_json = bench.write_bench_json
append_bench_history = bench.append_bench_history


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


marked_trace = bench.marked_trace
