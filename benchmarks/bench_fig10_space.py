"""Figure 10: live memory over normalized time for eclipse.

Paper: total live space for Base < OM-only < PACER r=1% < 3% < 10% <
25% < 100%, with PACER's metadata scaling with the sampling rate because
non-sampling periods discard metadata; LiteRace, which samples *code*
and never discards, uses almost as much space at a ~1% effective rate as
full tracking.
"""

import random

import pytest

from _common import print_banner
from repro.analysis import render_series
from repro.analysis.tables import mean
from repro.core.pacer import PacerDetector
from repro.core.sampling import BiasCorrectedController
from repro.detectors import FastTrackDetector, LiteRaceDetector, NullDetector
from repro.sim.runtime import Runtime, RuntimeConfig
from repro.sim.workloads import ECLIPSE, build_program

SPEC = ECLIPSE.scaled(1.5)
CONFIG = RuntimeConfig(track_memory=True, full_gc_every=4)
RATES = [0.01, 0.03, 0.10, 0.25]


def run_config(label):
    controller = None
    count_headers = True
    if label == "base":
        detector = NullDetector()
        count_headers = False
    elif label == "om-only":
        detector = NullDetector()
    elif label == "literace":
        detector = LiteRaceDetector(burst_length=100, seed=7)
    elif label == "r=100%":
        detector = FastTrackDetector()
    else:
        rate = float(label[2:-1]) / 100.0
        detector = PacerDetector()
        controller = BiasCorrectedController(rate, rng=random.Random(11))
    runtime = Runtime(
        build_program(SPEC, 0),
        detector,
        controller=controller,
        config=CONFIG,
        seed=0,
        count_headers=count_headers,
    )
    runtime.run()
    return runtime


def compute():
    labels = ["base", "om-only"] + [f"r={int(r * 100)}%" for r in RATES] + [
        "r=100%",
        "literace",
    ]
    out = {}
    for label in labels:
        runtime = run_config(label)
        series = [(s.step, s.total_words) for s in runtime.snapshots]
        meta = [s.metadata_words for s in runtime.snapshots]
        out[label] = (series, mean(meta), getattr(runtime.detector, "effective_rate", None))
    return out


@pytest.mark.benchmark(group="fig10")
def test_fig10_space_over_time(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_banner(f"Figure 10: live memory over normalized time (eclipse)")
    for label, (series, mean_meta, eff) in data.items():
        steps = [s for s, _ in series]
        total = max(steps) if steps else 1
        xs = [f"{s / total:.2f}" for s, _ in series][:: max(1, len(series) // 6)]
        ys = [w for _, w in series][:: max(1, len(series) // 6)]
        suffix = f" (effective rate {eff:.2%})" if eff is not None else ""
        print(render_series(f"{label}: words over normalized time{suffix}", xs, ys))

    means = {label: mean_meta for label, (_s, mean_meta, _e) in data.items()}
    # metadata grows with the sampling rate
    assert means["base"] == 0
    assert means["om-only"] == 0
    assert means["r=1%"] <= means["r=10%"] <= means["r=100%"]
    assert means["r=3%"] <= means["r=25%"] <= means["r=100%"]
    # PACER at small rates uses a small fraction of full-tracking space
    assert means["r=1%"] < 0.35 * means["r=100%"]
    # LiteRace at a ~1% effective rate keeps most of the metadata anyway
    lr_eff = data["literace"][2]
    assert lr_eff is not None and lr_eff < 0.25
    assert means["literace"] > 4 * means["r=1%"]
    assert means["literace"] > 0.3 * means["r=100%"]
