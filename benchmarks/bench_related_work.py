"""Related-work comparison (paper §2.2 and §6.2), measured.

Framing claims from §2.2/§6.2, checked on identical replayed traces:

* precise detectors (GENERIC, Djit+, FASTTRACK, Goldilocks) agree on the
  racy variables; Eraser's lockset discipline does not;
* FASTTRACK's epoch representation beats GENERIC where it matters — on
  the many-thread workload (hsqldb, 403 threads), where O(n) sync
  analysis costs are real; on 16-thread eclipse the two are within
  Python constant factors of each other;
* *eager* Goldilocks pays a large constant for its lockset transfers —
  which is exactly why the published system needed lazy evaluation and
  short-circuit checks to reach the performance parity §2.2 cites;
* PACER's always-on (never-sampling) configuration sits far below every
  full detector in both time and space: the deployment price point.
"""

import time

import pytest

from _common import print_banner, recorded_trace
from repro.analysis import render_table
from repro.core.pacer import PacerDetector
from repro.detectors import (
    DjitPlusDetector,
    EraserDetector,
    FastTrackDetector,
    GenericDetector,
    GoldilocksDetector,
)

WORKLOAD = "eclipse"


def _run(factory):
    events = recorded_trace(WORKLOAD, size=0.7)
    detector = factory()
    start = time.perf_counter()
    detector.run(events)
    elapsed = time.perf_counter() - start
    return detector, elapsed


def compute():
    out = {}
    # the O(n)-sensitivity pair: GENERIC vs FASTTRACK at 403 threads
    hsql = recorded_trace("hsqldb", size=0.5)
    times = {}
    for factory in (GenericDetector, FastTrackDetector):
        detector = factory()
        start = time.perf_counter()
        detector.run(hsql)
        times[detector.name] = time.perf_counter() - start
    out["_hsqldb_times"] = times
    for factory in (
        GenericDetector,
        DjitPlusDetector,
        FastTrackDetector,
        GoldilocksDetector,
        EraserDetector,
        PacerDetector,  # sampling off: the always-on deployment config
    ):
        detector, elapsed = _run(factory)
        out[detector.name] = (detector, elapsed)
    return out


@pytest.mark.benchmark(group="related-work")
def test_related_work_comparison(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    hsqldb_times = results.pop("_hsqldb_times")
    print_banner(f"Related-work comparison ({WORKLOAD} replay, no sampling markers)")
    rows = [
        [
            name,
            f"{elapsed * 1e3:.0f} ms",
            len(det.races),
            len({r.var for r in det.races}),
            det.footprint_words(),
        ]
        for name, (det, elapsed) in results.items()
    ]
    print(
        render_table(
            ["detector", "analysis time", "reports", "racy vars", "metadata words"],
            rows,
        )
    )

    precise_vars = {r.var for r in results["fasttrack"][0].races}
    # precise detectors agree on racy variables
    for name in ("generic", "djit+", "goldilocks"):
        assert {r.var for r in results[name][0].races} == precise_vars, name
    # FASTTRACK beats GENERIC on the many-thread workload, where O(n)
    # synchronization analysis actually bites
    print(
        f"hsqldb (403 threads): generic {hsqldb_times['generic'] * 1e3:.0f} ms,"
        f" fasttrack {hsqldb_times['fasttrack'] * 1e3:.0f} ms"
    )
    assert hsqldb_times["fasttrack"] < hsqldb_times["generic"] * 1.05
    # eager Goldilocks pays heavily for its transfers (the published
    # system is lazy for exactly this reason)
    assert results["goldilocks"][1] > results["fasttrack"][1]
    # Eraser's lockset-discipline reports include vars the precise
    # detectors cleared, or miss ones they flag (imprecision either way)
    eraser_vars = {r.var for r in results["eraser"][0].races}
    assert eraser_vars != precise_vars
    # PACER never-sampling: near-zero metadata, the deployment price point
    pacer = results["pacer"][0]
    assert pacer.tracked_variables == 0
    assert pacer.footprint_words() < 0.2 * results["fasttrack"][0].footprint_words()
