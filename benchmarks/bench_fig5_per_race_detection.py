"""Figure 5: per-distinct-race detection rate as a function of r.

Paper: for each program, sorting the evaluation races by detection rate
shows (a) nearly every race detected at least once at every rate, and
(b) mean per-race detection tracking the sampling rate — the per-race
form of the proportionality guarantee.
"""

import pytest

from _common import (
    accuracy_trials,
    baseline_experiment,
    print_banner,
    rate_accuracy,
)
from repro.analysis import render_series
from repro.analysis.tables import mean
from repro.sim.workloads import WORKLOADS

RATES = [0.03, 0.10, 0.25]


def compute():
    out = {}
    for name in sorted(WORKLOADS):
        exp = baseline_experiment(name)
        series = {}
        for rate in RATES:
            acc = rate_accuracy(name, rate, accuracy_trials(rate))
            rates = sorted(
                acc.per_race_rates(exp.evaluation_races), reverse=True
            )
            series[rate] = (rates, acc.mean_effective_rate, acc.trials)
        out[name] = (exp.evaluation_races, series)
    return out


@pytest.mark.benchmark(group="fig5")
def test_fig5_per_race_detection(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_banner("Figure 5: per-distinct-race detection rate, sorted, per program")
    for name, (races, series) in data.items():
        print(f"\n{name} ({len(races)} evaluation races)")
        for rate, (sorted_rates, eff, trials) in series.items():
            shown = ", ".join(f"{r:.2f}" for r in sorted_rates)
            print(
                f"  r={rate:.0%} (eff {eff:.2%}, {trials} trials): [{shown}]"
            )
    for name, (races, series) in data.items():
        if not races:
            continue
        means = [mean(series[rate][0]) for rate in RATES]
        # per-race average detection grows with the sampling rate
        assert all(b >= a - 0.03 for a, b in zip(means, means[1:])), name
        # at the top rate, most evaluation races are seen at least once
        top_rates, _eff, trials = series[RATES[-1]]
        seen = sum(1 for r in top_rates if r > 0)
        assert seen >= 0.6 * len(top_rates), (name, seen, len(top_rates))
